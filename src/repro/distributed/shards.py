"""Spectrum sharding by high-bit code partitions, plus lookup routing.

The k-spectrum is the structure that stops single-box scaling: every
fork worker holds the whole sorted table.  This module splits it the
same way :class:`repro.kmer.external.ExternalCodeCounter` splits its
disk spills — by the **top bits of the 2k-bit code** — so each shard
is a contiguous, still-sorted slice of code space that can be owned by
one remote worker:

- :class:`ShardPlan` maps codes → partitions → owning shards
  (partitions are assigned round-robin, so any shard count works, not
  just powers of two);
- :func:`split_spectrum` cuts a fitted spectrum into
  :class:`SpectrumShard` pieces with two ``searchsorted`` calls;
- :class:`ShardRouter` is the worker-side *view* that stands in for
  the monolithic :class:`~repro.kmer.spectrum.KmerSpectrum` during
  correction: locally-owned shards answer directly, everything else
  is batched into one lookup RPC per remote shard — and the existing
  Bloom prefilter fronts the whole thing, so the dominant case when
  probing d-mutant candidates (code absent everywhere) is answered
  from local bits without any network round trip.

The router guarantees bitwise-identical answers to the monolithic
spectrum: shard counts are exact, the Bloom filter has zero false
negatives, and routing is a pure partition of code space.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..kmer.prefilter import BloomPrefilter
from ..kmer.spectrum import KmerSpectrum
from .framing import recv_msg, send_msg

__all__ = [
    "ShardPlan",
    "SpectrumShard",
    "ShardRouter",
    "ShardClientPool",
    "ShardLookupError",
    "split_spectrum",
]


class ShardLookupError(ConnectionError):
    """A remote shard could not be reached after reconnect attempts."""


@dataclass(frozen=True)
class ShardPlan:
    """Deterministic code → partition → shard mapping.

    ``partition_bits`` keys on the top bits of the ``2k``-bit code
    (keying on raw uint64 high bits would put every k-mer in partition
    0, exactly as in ``ExternalCodeCounter``); partitions are assigned
    to shards round-robin so ``n_shards`` need not divide the
    partition count.
    """

    k: int
    n_shards: int
    partition_bits: int

    @classmethod
    def for_spectrum(cls, k: int, n_shards: int) -> "ShardPlan":
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        code_bits = 2 * k
        bits = 0
        while (1 << bits) < n_shards:
            bits += 1
        bits = max(0, min(bits, code_bits - 1))
        return cls(k=k, n_shards=n_shards, partition_bits=bits)

    @property
    def code_bits(self) -> int:
        return 2 * self.k

    @property
    def n_partitions(self) -> int:
        return 1 << self.partition_bits

    @property
    def _shift(self) -> np.uint64:
        return np.uint64(self.code_bits - self.partition_bits)

    def partition_of(self, codes: np.ndarray) -> np.ndarray:
        codes = np.asarray(codes, dtype=np.uint64)
        return (codes >> self._shift).astype(np.int64)

    def shard_of_partition(self, partition: int) -> int:
        return int(partition) % self.n_shards

    def shard_of(self, codes: np.ndarray) -> np.ndarray:
        return self.partition_of(codes) % self.n_shards

    def partition_edges(self) -> np.ndarray:
        """Code-space lower bounds of partitions 1..n-1 (for
        ``searchsorted`` splits of sorted code arrays)."""
        return (
            np.arange(1, self.n_partitions, dtype=np.uint64) << self._shift
        )


@dataclass
class SpectrumShard:
    """One shard's slice of the spectrum: sorted codes + counts."""

    shard_id: int
    k: int
    kmers: np.ndarray
    counts: np.ndarray

    @property
    def n_kmers(self) -> int:
        return int(self.kmers.size)

    @property
    def nbytes(self) -> int:
        return int(self.kmers.nbytes + self.counts.nbytes)

    def count(self, codes: np.ndarray) -> np.ndarray:
        """Occurrence counts (0 if absent) for codes routed here."""
        codes = np.asarray(codes, dtype=np.uint64)
        out = np.zeros(codes.shape, dtype=np.int64)
        if self.kmers.size == 0:
            return out
        idx = np.searchsorted(self.kmers, codes)
        idx_c = np.minimum(idx, self.kmers.size - 1)
        hit = self.kmers[idx_c] == codes
        out[hit] = self.counts[idx_c[hit]]
        return out


def split_spectrum(spectrum: KmerSpectrum, plan: ShardPlan) -> list[SpectrumShard]:
    """Cut a spectrum into ``plan.n_shards`` shards.

    The spectrum's code array is already globally sorted, so each
    partition is one contiguous slice (one ``searchsorted`` over the
    partition edges); a shard owning several partitions concatenates
    slices in increasing code order, so every shard stays sorted.
    """
    if spectrum.k != plan.k:
        raise ValueError(
            f"plan is for k={plan.k}, spectrum has k={spectrum.k}"
        )
    edges = plan.partition_edges()
    bounds = np.concatenate(
        [[0], np.searchsorted(spectrum.kmers, edges), [spectrum.kmers.size]]
    )
    pieces: dict[int, list[tuple[int, int]]] = {
        s: [] for s in range(plan.n_shards)
    }
    for p in range(plan.n_partitions):
        lo, hi = int(bounds[p]), int(bounds[p + 1])
        pieces[plan.shard_of_partition(p)].append((lo, hi))
    shards = []
    for s in range(plan.n_shards):
        ranges = pieces[s]
        kmers = np.concatenate(
            [spectrum.kmers[lo:hi] for lo, hi in ranges]
        ) if ranges else np.empty(0, dtype=np.uint64)
        counts = np.concatenate(
            [spectrum.counts[lo:hi] for lo, hi in ranges]
        ) if ranges else np.empty(0, dtype=np.int64)
        shards.append(
            SpectrumShard(
                shard_id=s, k=spectrum.k, kmers=kmers, counts=counts
            )
        )
    return shards


class ShardClientPool:
    """Persistent framed connections to remote shard servers.

    One connection per shard address, lazily opened, lock-protected
    (a worker's shard lookups are issued from its single chunk thread,
    but respawn route updates arrive from the control thread).  A send
    or receive failure closes the connection and retries against the
    *current* routing table — which the coordinator refreshes after
    respawning a dead worker — with short deterministic backoff.
    """

    def __init__(
        self,
        routes: dict[int, tuple[str, int]],
        connect_timeout: float = 10.0,
        retries: int = 4,
        backoff: float = 0.05,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._routes = dict(routes)
        self._conns: dict[int, socket.socket] = {}
        self._lock = threading.Lock()
        self.connect_timeout = connect_timeout
        self.retries = retries
        self.backoff = backoff
        self._sleep = sleep

    def update_routes(self, routes: dict[int, tuple[str, int]]) -> None:
        with self._lock:
            stale = {
                s: conn
                for s, conn in self._conns.items()
                if routes.get(s) != self._routes.get(s)
            }
            for s in stale:
                self._conns.pop(s, None)
            self._routes = dict(routes)
        for conn in stale.values():
            conn.close()

    def _connect(self, shard_id: int) -> socket.socket:
        addr = self._routes.get(shard_id)
        if addr is None:
            raise ShardLookupError(f"no route for shard {shard_id}")
        conn = socket.create_connection(
            tuple(addr), timeout=self.connect_timeout
        )
        conn.settimeout(None)
        return conn

    def lookup(self, shard_id: int, codes: np.ndarray) -> np.ndarray:
        """Counts for ``codes`` from the shard's owner (exact)."""
        last: Exception | None = None
        for attempt in range(self.retries + 1):
            if attempt:
                self._sleep(self.backoff * (2 ** (attempt - 1)))
            with self._lock:
                conn = self._conns.pop(shard_id, None)
            try:
                if conn is None:
                    conn = self._connect(shard_id)
                send_msg(
                    conn,
                    {"type": "lookup", "shard": shard_id, "codes": codes},
                )
                reply = recv_msg(conn)
            except (ConnectionError, OSError, ValueError) as e:
                # The owner may be mid-respawn: retry against whatever
                # the routing table says *now* (accounted by callers
                # via the router's rpc_retries counter).
                if conn is not None:
                    conn.close()
                last = e
                continue
            if not isinstance(reply, dict) or "counts" not in reply:
                conn.close()
                last = ShardLookupError(
                    f"shard {shard_id}: malformed reply {type(reply)}"
                )
                continue
            with self._lock:
                old = self._conns.get(shard_id)
                self._conns[shard_id] = conn
            if old is not None and old is not conn:
                old.close()
            return np.asarray(reply["counts"], dtype=np.int64)
        raise ShardLookupError(
            f"shard {shard_id} unreachable after {self.retries + 1} "
            f"attempt(s): {last}"
        ) from last

    def close(self) -> None:
        with self._lock:
            conns, self._conns = list(self._conns.values()), {}
        for conn in conns:
            conn.close()


@dataclass
class ShardRouter:
    """Sharded stand-in for a :class:`KmerSpectrum` during correction.

    Implements the exact query surface correction uses
    (``contains`` / ``count`` / ``count_scalar`` / ``__contains__`` /
    ``k`` / ``n_kmers``): locally owned shards answer in-process,
    remote codes are batched into one RPC per shard, and the Bloom
    prefilter (zero false negatives, shipped whole — it is bits, not
    the table) short-circuits definitely-absent codes before any
    routing happens.  Every answer is bitwise identical to the
    monolithic spectrum's.
    """

    k: int
    plan: ShardPlan
    local: dict[int, SpectrumShard]
    clients: ShardClientPool | None = None
    prefilter: BloomPrefilter | None = field(default=None, repr=False)
    n_kmers: int = 0
    #: Monotonic lookup counters, harvested per chunk into the run's
    #: Counters (``shard.lookup_*`` in reports).
    counters: dict[str, int] = field(default_factory=dict)
    _harvested: dict[str, int] = field(default_factory=dict, repr=False)

    def _incr(self, name: str, n: int = 1) -> None:
        if n:
            self.counters[name] = self.counters.get(name, 0) + int(n)

    def harvest(self) -> dict[str, int]:
        """Counter deltas since the previous harvest (memo-cache style)."""
        out = {}
        for name, total in self.counters.items():
            delta = total - self._harvested.get(name, 0)
            if delta:
                out[name] = delta
            self._harvested[name] = total
        return out

    # -- KmerSpectrum query surface -----------------------------------
    def with_prefilter(self, fp_rate: float = 0.01) -> "ShardRouter":
        """The router already fronts lookups with the shipped filter."""
        del fp_rate
        return self

    def count(self, codes: np.ndarray) -> np.ndarray:
        codes = np.asarray(codes, dtype=np.uint64)
        flat = codes.ravel()
        out = np.zeros(flat.shape, dtype=np.int64)
        self._incr("shard.lookup_total", flat.size)
        if flat.size == 0:
            return out.reshape(codes.shape)
        if self.prefilter is not None:
            maybe = self.prefilter.maybe_contains(flat)
            self._incr(
                "shard.lookup_prefiltered", flat.size - int(maybe.sum())
            )
        else:
            maybe = np.ones(flat.shape, dtype=bool)
        if maybe.any():
            live_idx = np.flatnonzero(maybe)
            live = flat[live_idx]
            shard_ids = self.plan.shard_of(live)
            for s in np.unique(shard_ids).tolist():
                sel = shard_ids == s
                sub = live[sel]
                shard = self.local.get(int(s))
                if shard is not None:
                    self._incr("shard.lookup_local", sub.size)
                    counts = shard.count(sub)
                else:
                    if self.clients is None:
                        raise ShardLookupError(
                            f"shard {s} is remote but no client pool "
                            "is attached"
                        )
                    self._incr("shard.lookup_remote", sub.size)
                    self._incr("shard.rpc_calls")
                    counts = self.clients.lookup(int(s), sub)
                    if counts.shape != sub.shape:
                        raise ShardLookupError(
                            f"shard {s}: count shape {counts.shape} for "
                            f"query shape {sub.shape}"
                        )
                out[live_idx[sel]] = counts
        return out.reshape(codes.shape)

    def contains(self, codes: np.ndarray) -> np.ndarray:
        return self.count(codes) > 0

    def count_scalar(self, code: int) -> int:
        return int(self.count(np.array([code], dtype=np.uint64))[0])

    def __contains__(self, code: int) -> bool:
        return self.count_scalar(code) > 0
