"""The Backend protocol: one fault model, pluggable execution substrates.

The reliable layer's recovery loop (:func:`repro.mapreduce.reliable.
_run_item`) only ever asks its pool for four things — submit a
``(fn, payload)`` and get a future plus a generation token, rebuild
after a crash, shut down, and report side counters.  That surface is
the :class:`Backend` protocol; anything implementing it slots under
both the parallel correction engine and the reliable MapReduce runner
and inherits the whole fault model for free: per-attempt timeouts
become straggler re-execution in the parent, a dead worker becomes a
``BrokenProcessPool`` → ``recreate()`` → serial-fallback sequence, and
skip-mode bisection never changes.

Three substrates ship:

- :class:`LocalThreadsBackend` — a thread pool sharing the parent's
  memory (the debugging/no-fork substrate; numpy kernels release the
  GIL so it still overlaps);
- :class:`LocalForkBackend` — today's forked process pool, workers
  inheriting the corrector copy-on-write (wraps
  :class:`~repro.mapreduce.reliable._PoolManager` unchanged);
- :class:`~repro.distributed.socket_backend.SocketBackend` — separate
  worker *processes* over length-prefixed pickle sockets, each owning
  a shard of the spectrum (see :mod:`repro.distributed.shards`).

``install_state(corrector, reads)`` is the state-distribution hook:
local backends rely on shared memory / fork inheritance (the fork
backend rebuilds its pool here so children snapshot the *current*
state), the socket backend ships shards and routing tables.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Protocol, runtime_checkable

__all__ = [
    "BACKEND_NAMES",
    "Backend",
    "LocalForkBackend",
    "LocalThreadsBackend",
    "create_backend",
]


@runtime_checkable
class Backend(Protocol):
    """What the recovery loop needs from an execution substrate."""

    #: Registry name ("threads" / "fork" / "socket").
    name: str
    #: Current pool generation; bumped by :meth:`recreate` so one crash
    #: burst triggers exactly one rebuild.
    generation: int

    def want_pool(self, workers: int, n_items: int) -> bool:
        """Would pooled execution beat the serial fallback here?"""
        ...

    def install_state(self, corrector, reads) -> None:
        """Distribute phase-1 state before a correction run."""
        ...

    def submit(self, fn: Callable, payload: tuple) -> tuple[Future, int]:
        """Schedule ``fn(payload)``; returns (future, generation)."""
        ...

    def recreate(self, generation: int) -> None:
        """Rebuild after a worker death, iff ``generation`` is current."""
        ...

    def harvest(self) -> dict:
        """Counter deltas since the last harvest (``backend.*`` keys)."""
        ...

    def shutdown(self) -> None: ...


class LocalThreadsBackend:
    """Thread-pool substrate sharing the parent process's memory.

    Workers read the engine's installed state directly — no pickling,
    no fork, works on every platform.  A timed-out attempt keeps
    running in its thread (its result is simply never merged), exactly
    like an abandoned pool straggler.
    """

    name = "threads"

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.generation = 0
        self._executor: ThreadPoolExecutor | None = None

    def want_pool(self, workers: int, n_items: int) -> bool:
        return workers > 1 and n_items > 1

    def install_state(self, corrector, reads) -> None:
        del corrector, reads  # threads see the parent's state directly

    def _ensure(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-backend",
            )
        return self._executor

    def submit(self, fn: Callable, payload: tuple) -> tuple[Future, int]:
        return self._ensure().submit(fn, payload), self.generation

    def recreate(self, generation: int) -> None:
        if generation == self.generation and self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
            self.generation += 1

    def harvest(self) -> dict:
        return {}

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None


class LocalForkBackend:
    """Forked process pool: the PR-2 engine behind the protocol.

    Children inherit the installed corrector/reads through fork's
    copy-on-write pages, so :meth:`install_state` must *rebuild* the
    pool — a pool forked before the state changed would serve stale
    snapshots (each streamed block re-forks, same as the legacy path).
    """

    name = "fork"

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._pool = None

    @property
    def generation(self) -> int:
        return self._pool.generation if self._pool is not None else 0

    def want_pool(self, workers: int, n_items: int) -> bool:
        return workers > 1 and n_items > 1 and hasattr(os, "fork")

    def install_state(self, corrector, reads) -> None:
        del corrector, reads  # read from the engine's module state at fork
        from ..mapreduce.reliable import _PoolManager

        if self._pool is not None:
            self._pool.shutdown()
        self._pool = _PoolManager(self.workers)

    def submit(self, fn: Callable, payload: tuple) -> tuple[Future, int]:
        if self._pool is None:
            self.install_state(None, None)
        return self._pool.submit(fn, payload)

    def recreate(self, generation: int) -> None:
        if self._pool is not None:
            self._pool.recreate(generation)

    def harvest(self) -> dict:
        return {}

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


BACKEND_NAMES = ("threads", "fork", "socket")


def create_backend(
    name: str,
    workers: int,
    shards: int = 0,
    **options,
) -> Backend:
    """Instantiate a backend by registry name.

    ``shards`` only applies to (and defaults sensibly for) the socket
    backend; extra keyword options are forwarded to its constructor.
    """
    if name == "threads":
        return LocalThreadsBackend(workers)
    if name == "fork":
        return LocalForkBackend(workers)
    if name == "socket":
        from .socket_backend import SocketBackend

        return SocketBackend(workers, shards=shards or None, **options)
    raise ValueError(
        f"unknown backend {name!r}; expected one of {', '.join(BACKEND_NAMES)}"
    )
