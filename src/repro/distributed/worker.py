"""Remote correction worker: ``python -m repro.distributed.worker``.

One worker process per :class:`~repro.distributed.socket_backend.
SocketBackend` slot.  On startup it dials the coordinator's control
address, opens its own shard-lookup server on an ephemeral loopback
port, and introduces itself (``hello``).  The coordinator answers with
``setup`` — the worker's spectrum shards plus the full shard routing
table — after which the worker rebuilds a corrector locally: the
shipped :class:`~repro.distributed.shards.ShardRouter` stands in for
the monolithic spectrum (its probing neighbor index gives bitwise the
same answers as the parent's precomputed one), the tile table and
Bloom prefilter arrive whole because they are small, and correction
chunks stream in over the control socket.

Control protocol (length-prefixed pickles, coordinator → worker):

- ``setup {state, routes}`` → build corrector, reply ``ready``;
- ``routes {routes}`` → refresh the shard client pool (sent after the
  coordinator respawns a dead peer; no reply);
- ``chunk {seq, start, reads, attempt}`` → correct, reply
  ``result {seq, value}`` where value is the engine's
  ``((start, codes), stats)`` contract, or ``error {seq, message}``;
- ``call {seq, fn, payload}`` → run a module-level function (the
  MapReduce attempt entry points), same reply shape;
- ``ping`` → ``pong``;  ``shutdown`` → exit 0.

A chunk that fails because a *peer* worker died replies ``error`` —
the coordinator's recovery loop retries the chunk after respawning the
peer and broadcasting fresh routes, so the failure never surfaces to
the job (and output bytes never change: retries are pure re-runs).
"""

from __future__ import annotations

import argparse
import socket
import socketserver
import sys
import threading

import numpy as np

from .. import telemetry
from ..mapreduce import faults
from .framing import ConnectionClosed, recv_msg, send_msg
from .shards import ShardClientPool, ShardRouter, SpectrumShard

__all__ = ["ShardServer", "build_corrector", "main", "run_chunk"]


class _ShardHandler(socketserver.BaseRequestHandler):
    """Persistent per-connection lookup loop: ``{shard, codes}`` in,
    ``{counts}`` out, until the peer hangs up."""

    def handle(self) -> None:
        while True:
            try:
                msg = recv_msg(self.request)
            except (ConnectionClosed, OSError):
                return
            shards: dict[int, SpectrumShard] = self.server.shards  # type: ignore[attr-defined]
            reply: dict[str, object]
            if (
                isinstance(msg, dict)
                and msg.get("type") == "lookup"
                and msg.get("shard") in shards
            ):
                codes = np.asarray(msg["codes"], dtype=np.uint64)
                reply = {"counts": shards[msg["shard"]].count(codes)}
            else:
                reply = {"error": f"bad lookup request: {msg!r}"}
            try:
                send_msg(self.request, reply)
            except OSError:
                return


class ShardServer(socketserver.ThreadingTCPServer):
    """Threaded TCP server answering count lookups for owned shards."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, host: str = "127.0.0.1"):
        super().__init__((host, 0), _ShardHandler)
        self.shards: dict[int, SpectrumShard] = {}

    @property
    def address(self) -> tuple[str, int]:
        host, port = self.server_address[:2]
        return str(host), int(port)


def build_corrector(state: dict, routes: dict[int, tuple[str, int]]):
    """Rebuild a corrector from a coordinator ``setup`` state blob.

    Returns ``(corrector, router)``; router is None for whole-pickle
    shipping (non-sharded correctors) and for stateless call-only
    setups.
    """
    kind = state.get("kind")
    if kind == "none":
        return None, None
    if kind == "pickled":
        return state["corrector"], None
    if kind == "reptile-sharded":
        from ..core.reptile.corrector import ReptileCorrector

        plan = state["plan"]
        local = {s.shard_id: s for s in state["shards"]}
        router = ShardRouter(
            k=plan.k,
            plan=plan,
            local=local,
            clients=ShardClientPool(routes),
            prefilter=state["prefilter"],
            n_kmers=state["n_kmers"],
        )
        corrector = ReptileCorrector(
            params=state["params"],
            spectrum=router,  # duck-typed: the exact query surface used
            tiles=state["tiles"],
            neighbor_backend="probing",
            flexible_tiling=state["flexible_tiling"],
            hotpath=state["hotpath"],
        )
        return corrector, router
    raise ValueError(f"unknown state kind {kind!r}")


def run_chunk(
    corrector,
    reads,
    start: int,
    attempt: int,
    router: ShardRouter | None = None,
) -> tuple[tuple[int, np.ndarray], dict]:
    """Correct one shipped chunk; mirrors the engine's
    ``_chunk_attempt`` contract (including the substitution-only shape
    check and the fault-injection attempt gate)."""
    from ..parallel.engine import _call_chunk

    faults.set_current_attempt(attempt)
    try:
        corrected, stats = _call_chunk(corrector, reads)
    finally:
        faults.set_current_attempt(0)
    if corrected.codes.shape != reads.codes.shape:
        raise RuntimeError(
            "distributed correction requires substitution-only "
            f"correctors (chunk shape changed {reads.codes.shape} -> "
            f"{corrected.codes.shape})"
        )
    stats["chunks_corrected"] = 1
    stats["reads_corrected"] = reads.n_reads
    if router is not None:
        for key, delta in router.harvest().items():
            stats[key] = stats.get(key, 0) + delta
    return (start, corrected.codes), stats


def _serve(conn: socket.socket, worker_id: int, shard_server: ShardServer) -> int:
    """The control loop; returns the process exit code."""
    corrector = None
    router: ShardRouter | None = None
    while True:
        try:
            msg = recv_msg(conn)
        except (ConnectionClosed, OSError):
            # Coordinator gone: nothing to serve, exit quietly (the
            # coordinator's dispatcher already accounts the death).
            return 0
        mtype = msg.get("type") if isinstance(msg, dict) else None
        if mtype == "shutdown":
            return 0
        if mtype == "ping":
            send_msg(conn, {"type": "pong", "worker_id": worker_id})
            continue
        if mtype == "setup":
            corrector, router = build_corrector(msg["state"], msg["routes"])
            shard_server.shards = {
                s.shard_id: s for s in msg["state"].get("shards", [])
            }
            send_msg(conn, {"type": "ready", "worker_id": worker_id})
            continue
        if mtype == "routes":
            if router is not None and router.clients is not None:
                router.clients.update_routes(msg["routes"])
            continue
        if mtype in ("chunk", "call"):
            seq = msg["seq"]
            try:
                if mtype == "chunk":
                    if corrector is None:
                        raise RuntimeError("chunk before setup")
                    value = run_chunk(
                        corrector,
                        msg["reads"],
                        msg["start"],
                        msg["attempt"],
                        router,
                    )
                else:
                    value = msg["fn"](msg["payload"])
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as e:
                # Accounted locally and again coordinator-side, where
                # the error reply increments backend.remote_errors.
                telemetry.count("worker.chunk_errors")
                send_msg(
                    conn,
                    {
                        "type": "error",
                        "seq": seq,
                        "message": f"{type(e).__name__}: {e}",
                        "worker_id": worker_id,
                    },
                )
            else:
                send_msg(conn, {"type": "result", "seq": seq, "value": value})
            continue
        send_msg(
            conn,
            {
                "type": "error",
                "seq": msg.get("seq") if isinstance(msg, dict) else None,
                "message": f"unknown message type {mtype!r}",
                "worker_id": worker_id,
            },
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-distributed-worker",
        description="shard-owning remote correction worker "
        "(spawned by SocketBackend; not a user-facing tool)",
    )
    parser.add_argument("--connect", required=True, metavar="HOST:PORT")
    parser.add_argument("--worker-id", type=int, required=True)
    parser.add_argument(
        "--shard-host", default="127.0.0.1",
        help="interface for this worker's shard-lookup server",
    )
    args = parser.parse_args(argv)
    host, _, port = args.connect.rpartition(":")
    faults.mark_worker_process()

    shard_server = ShardServer(args.shard_host)
    server_thread = threading.Thread(
        target=shard_server.serve_forever, daemon=True
    )
    server_thread.start()
    conn = socket.create_connection((host, int(port)), timeout=30)
    conn.settimeout(None)
    try:
        send_msg(
            conn,
            {
                "type": "hello",
                "worker_id": args.worker_id,
                "shard_addr": shard_server.address,
            },
        )
        return _serve(conn, args.worker_id, shard_server)
    finally:
        conn.close()
        shard_server.shutdown()
        shard_server.server_close()


if __name__ == "__main__":
    sys.exit(main())
