"""SocketBackend: sharded remote workers behind the Backend protocol.

The coordinator side of the distributed runtime.  ``install_state``
splits the corrector's spectrum into high-bit code shards
(:mod:`repro.distributed.shards`), spawns ``workers`` genuine
subprocesses (``python -m repro.distributed.worker``), and ships each
its owned shards plus the full routing table; correction chunks then
stream over per-worker control sockets as length-prefixed pickles.

Failure semantics reuse the reliable layer wholesale, because this
class speaks :class:`~repro.mapreduce.reliable._PoolManager`'s
dialect:

- a worker that stops answering mid-chunk surfaces as
  ``BrokenProcessPool`` on that chunk's future → the recovery loop
  calls :meth:`recreate`, which respawns only the dead workers,
  re-ships their shards, and broadcasts fresh routes to the survivors
  — then re-runs the affected chunk serially in the parent (which
  kept the full unsharded corrector exactly for this);
- a chunk that *remotely* fails (e.g. its shard lookups raced a peer's
  death) replies ``error`` and is retried by the same loop — retries
  are pure re-runs, so output bytes never change;
- a straggler chunk times out via ``Future.result(timeout)`` and is
  re-executed in the parent; the late remote result is simply never
  merged.

Every control socket has exactly one owner (its dispatcher thread), so
setup/ready, chunk/result, and route updates never interleave on the
wire.  Workers default to loopback; ``host`` exists so tests and
future multi-box deployments can bind elsewhere — the framing layer's
trust model (pickles between self-spawned processes) still applies.
"""

from __future__ import annotations

import os
import queue
import socket
import subprocess
import sys
import threading
import time
from concurrent.futures import Future, InvalidStateError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from .framing import ConnectionClosed, recv_msg, send_msg
from .shards import ShardPlan, SpectrumShard, split_spectrum

__all__ = ["SocketBackend", "WorkerSpawnError"]


class WorkerSpawnError(RuntimeError):
    """A worker process failed to start or complete its handshake."""


@dataclass
class _RemoteWorker:
    """Coordinator-side record of one worker process."""

    worker_id: int
    proc: subprocess.Popen
    conn: socket.socket
    shard_addr: tuple[str, int]
    shard_ids: tuple[int, ...]
    commands: "queue.Queue[tuple]" = field(default_factory=queue.Queue)
    thread: threading.Thread | None = None
    seq: int = 0
    dead: bool = False
    #: Set by shutdown() so a forced socket close is not misread as a
    #: worker death by the dispatcher.
    closing: bool = False


class SocketBackend:
    """Backend running correction on shard-owning worker processes."""

    name = "socket"

    def __init__(
        self,
        workers: int,
        shards: int | None = None,
        host: str = "127.0.0.1",
        spawn_timeout: float = 60.0,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.n_shards = shards if shards is not None else workers
        if self.n_shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.n_shards}")
        self.host = host
        self.spawn_timeout = spawn_timeout
        self.generation = 0
        self._workers: dict[int, _RemoteWorker] = {}
        self._listener: socket.socket | None = None
        self._lock = threading.Lock()
        self._count_lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._harvested: dict[str, int] = {}
        self._rr = 0
        self._reads = None
        self._state_corrector = None
        self._state_base: dict | None = None
        self._shards: list[SpectrumShard] = []
        self._shutdown = False

    # -- counters -----------------------------------------------------
    def _incr(self, name: str, n: int = 1) -> None:
        if n:
            with self._count_lock:
                self._counters[name] = self._counters.get(name, 0) + int(n)

    def harvest(self) -> dict:
        with self._count_lock:
            out = {}
            for name, total in self._counters.items():
                delta = total - self._harvested.get(name, 0)
                if delta:
                    out[name] = delta
                self._harvested[name] = total
            return out

    # -- protocol surface ---------------------------------------------
    def want_pool(self, workers: int, n_items: int) -> bool:
        # Asking for the socket backend *is* asking for remote
        # execution — even one worker / one chunk goes distributed.
        del workers
        return n_items >= 1 and not self._shutdown

    def install_state(self, corrector, reads) -> None:
        self._reads = reads
        self._ensure_started()
        if corrector is not None and corrector is not self._state_corrector:
            self._state_base, self._shards = self._shipping_state(corrector)
            self._setup_workers(list(self._workers.values()))
            self._state_corrector = corrector

    def submit(self, fn: Callable, payload: tuple) -> tuple[Future, int]:
        from ..parallel import engine as _engine

        self._ensure_started()
        fut: Future = Future()
        if fn is _engine._chunk_attempt:
            _task, (start, stop), attempt = payload
            desc = ("chunk", start, stop, attempt)
        else:
            desc = ("call", fn, payload)
        with self._lock:
            live = [w for w in self._workers.values() if not w.dead]
            if live:
                worker = live[self._rr % len(live)]
                self._rr += 1
            else:
                worker = None
        if worker is None:
            # Completing the future runs done-callbacks synchronously
            # (and takes the future's own condition), so it must happen
            # after the router lock is released — a callback that calls
            # back into this backend would otherwise self-deadlock.
            fut.set_exception(BrokenProcessPool("no live socket workers"))
            return fut, self.generation
        worker.commands.put(("work", desc, fut))
        return fut, self.generation

    def recreate(self, generation: int) -> None:
        with self._lock:
            if generation != self.generation or self._shutdown:
                return
            self.generation += 1
            dead = [w for w in self._workers.values() if w.dead]
        if not dead:
            return
        for w in dead:
            self._reap(w)
        respawned = []
        for w in dead:
            try:
                nw = self._spawn(w.worker_id, w.shard_ids)
            except (WorkerSpawnError, OSError):
                # Leave the slot dead; chunks fall back to the parent's
                # serial path, which needs no remote workers at all.
                self._incr("backend.respawn_failures")
                continue
            respawned.append(nw)
            with self._lock:
                self._workers[w.worker_id] = nw
        if respawned and self._state_base is not None:
            self._setup_workers(respawned)
        self._incr("backend.workers_respawned", len(respawned))
        routes = self._routes()
        with self._lock:
            live = [w for w in self._workers.values() if not w.dead]
        for w in live:
            w.commands.put(("routes", {"type": "routes", "routes": routes}))

    def shutdown(self) -> None:
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
            workers = list(self._workers.values())
            self._workers = {}
        for w in workers:
            w.closing = True
            w.commands.put(("stop",))
        for w in workers:
            if w.thread is not None:
                w.thread.join(timeout=2.0)
                if w.thread.is_alive():
                    # Dispatcher is blocked mid-recv; force the socket
                    # closed to unblock it (closing flag keeps this
                    # from being accounted as a death).
                    _close_quietly(w.conn)
                    w.thread.join(timeout=2.0)
        for w in workers:
            self._reap(w)
        if self._listener is not None:
            _close_quietly(self._listener)
            self._listener = None

    # -- startup / handshake ------------------------------------------
    def _ensure_started(self) -> None:
        if self._shutdown:
            raise RuntimeError("backend already shut down")
        with self._lock:
            if self._workers:
                return
        if self._listener is None:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.host, 0))
            listener.listen(self.workers + 4)
            self._listener = listener
        assignment = {
            wid: tuple(
                s for s in range(self.n_shards) if s % self.workers == wid
            )
            for wid in range(self.workers)
        }
        spawned = [
            self._spawn(wid, shard_ids)
            for wid, shard_ids in assignment.items()
        ]
        with self._lock:
            for w in spawned:
                self._workers[w.worker_id] = w

    def _spawn(
        self, worker_id: int, shard_ids: tuple[int, ...]
    ) -> _RemoteWorker:
        assert self._listener is not None
        import repro

        # Workers must resolve everything the coordinator can pickle by
        # reference (repro itself, but also e.g. a caller's task module)
        # so they inherit the parent's whole import path.
        src_root = str(Path(repro.__file__).resolve().parent.parent)
        paths: list[str] = [src_root]
        for entry in [p for p in sys.path if p] + (
            os.environ.get("PYTHONPATH", "").split(os.pathsep)
        ):
            if entry and entry not in paths:
                paths.append(entry)
        env = os.environ.copy()
        env["PYTHONPATH"] = os.pathsep.join(paths)
        host, port = self._listener.getsockname()[:2]
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.distributed.worker",
                "--connect",
                f"{host}:{port}",
                "--worker-id",
                str(worker_id),
                "--shard-host",
                self.host,
            ],
            env=env,
        )
        deadline = time.monotonic() + self.spawn_timeout
        try:
            conn, hello = self._await_hello(worker_id, deadline)
        except (WorkerSpawnError, OSError):
            proc.kill()
            proc.wait()
            raise
        worker = _RemoteWorker(
            worker_id=worker_id,
            proc=proc,
            conn=conn,
            shard_addr=tuple(hello["shard_addr"]),
            shard_ids=shard_ids,
        )
        worker.thread = threading.Thread(
            target=self._dispatch_loop,
            args=(worker,),
            name=f"repro-socket-worker-{worker_id}",
            daemon=True,
        )
        worker.thread.start()
        return worker

    def _await_hello(
        self, worker_id: int, deadline: float
    ) -> tuple[socket.socket, dict]:
        """Accept connections until ``worker_id``'s hello arrives."""
        assert self._listener is not None
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise WorkerSpawnError(
                    f"worker {worker_id} did not connect within "
                    f"{self.spawn_timeout:.0f}s"
                )
            self._listener.settimeout(remaining)
            try:
                conn, _addr = self._listener.accept()
            except TimeoutError as e:
                raise WorkerSpawnError(
                    f"worker {worker_id} did not connect within "
                    f"{self.spawn_timeout:.0f}s"
                ) from e
            conn.settimeout(self.spawn_timeout)
            try:
                hello = recv_msg(conn)
            except (ConnectionClosed, OSError, ValueError):
                _close_quietly(conn)
                self._incr("backend.handshake_failures")
                continue
            conn.settimeout(None)
            if (
                isinstance(hello, dict)
                and hello.get("type") == "hello"
                and hello.get("worker_id") == worker_id
            ):
                return conn, hello
            # A stale or foreign connection; drop it and keep waiting.
            _close_quietly(conn)
            self._incr("backend.handshake_failures")

    # -- state shipping -----------------------------------------------
    def _shipping_state(self, corrector) -> tuple[dict, list[SpectrumShard]]:
        """Build the per-run state blob (sans per-worker shard lists)."""
        from ..core.reptile.corrector import ReptileCorrector

        spectrum = getattr(corrector, "spectrum", None)
        if isinstance(corrector, ReptileCorrector) and spectrum is not None:
            plan = ShardPlan.for_spectrum(spectrum.k, self.n_shards)
            shards = split_spectrum(spectrum, plan)
            base = {
                "kind": "reptile-sharded",
                "plan": plan,
                "params": corrector.params,
                "tiles": corrector.tiles,
                "flexible_tiling": corrector.flexible_tiling,
                "hotpath": corrector.hotpath,
                "prefilter": spectrum.prefilter,
                "n_kmers": spectrum.n_kmers,
            }
            return base, shards
        # Anything else ships whole: still remote execution, no
        # sharding (REDEEM's model is not a plain spectrum table).
        return {"kind": "pickled", "corrector": corrector}, []

    def _routes(self) -> dict[int, tuple[str, int]]:
        with self._lock:
            live = [w for w in self._workers.values() if not w.dead]
        routes: dict[int, tuple[str, int]] = {}
        for w in live:
            for s in w.shard_ids:
                routes[s] = w.shard_addr
        return routes

    def _setup_workers(self, workers: list[_RemoteWorker]) -> None:
        """Ship state to ``workers`` and wait until each is ready."""
        assert self._state_base is not None
        routes = self._routes()
        by_owner: dict[int, list[SpectrumShard]] = {}
        for s in self._shards:
            by_owner.setdefault(s.shard_id % self.workers, []).append(s)
        waits = []
        for w in workers:
            if w.dead:
                continue
            state = dict(self._state_base)
            if state["kind"] == "reptile-sharded":
                state["shards"] = by_owner.get(w.worker_id, [])
            event = threading.Event()
            holder: dict = {}
            w.commands.put(
                (
                    "setup",
                    {"type": "setup", "state": state, "routes": routes},
                    event,
                    holder,
                )
            )
            waits.append((w, event, holder))
        for w, event, holder in waits:
            if not event.wait(timeout=self.spawn_timeout):
                self._mark_dead(w)
                self._incr("backend.setup_timeouts")
            elif holder.get("error") is not None:
                self._incr("backend.setup_failures")

    # -- dispatcher ---------------------------------------------------
    def _mark_dead(self, worker: _RemoteWorker) -> None:
        with self._lock:
            if worker.dead:
                return
            worker.dead = True
        self._incr("backend.worker_deaths")
        self._drain_queue(worker)

    def _drain_queue(self, worker: _RemoteWorker) -> None:
        """Fail every queued command so no caller waits forever."""
        while True:
            try:
                item = worker.commands.get_nowait()
            except queue.Empty:
                return
            if item[0] == "work":
                _fail_future(
                    item[2],
                    BrokenProcessPool(
                        f"socket worker {worker.worker_id} died"
                    ),
                )
            elif item[0] == "setup":
                item[3]["error"] = ConnectionClosed("worker died")
                item[2].set()

    def _dispatch_loop(self, worker: _RemoteWorker) -> None:
        """Single owner of ``worker.conn``: serializes all wire I/O."""
        while True:
            item = worker.commands.get()
            kind = item[0]
            if kind == "stop":
                self._send_shutdown(worker)
                return
            if kind == "routes":
                try:
                    send_msg(worker.conn, item[1])
                except (ConnectionClosed, OSError):
                    if not worker.closing:
                        self._mark_dead(worker)
                    return
                continue
            if kind == "setup":
                msg, event, holder = item[1], item[2], item[3]
                try:
                    send_msg(worker.conn, msg)
                    reply = recv_msg(worker.conn)
                    if not (
                        isinstance(reply, dict)
                        and reply.get("type") == "ready"
                    ):
                        raise ConnectionClosed(
                            f"expected ready, got {reply!r}"
                        )
                except (ConnectionClosed, OSError, ValueError) as e:
                    holder["error"] = e
                    event.set()
                    if not worker.closing:
                        self._mark_dead(worker)
                    return
                event.set()
                continue
            # kind == "work"
            desc, fut = item[1], item[2]
            if not fut.set_running_or_notify_cancel():
                continue
            worker.seq += 1
            seq = worker.seq
            if desc[0] == "chunk":
                _tag, start, stop, attempt = desc
                # Sliced lazily at send time: only one chunk of reads
                # is ever serialized per worker at once.
                msg = {
                    "type": "chunk",
                    "seq": seq,
                    "start": start,
                    "attempt": attempt,
                    "reads": self._reads.subset(np.arange(start, stop)),
                }
            else:
                msg = {
                    "type": "call",
                    "seq": seq,
                    "fn": desc[1],
                    "payload": desc[2],
                }
            try:
                sent = send_msg(worker.conn, msg)
                self._incr("backend.rpc_calls")
                self._incr("backend.rpc_bytes_sent", sent)
                reply = recv_msg(worker.conn)
                while (
                    isinstance(reply, dict) and reply.get("seq") != seq
                ):
                    # Stale reply from an earlier abandoned exchange.
                    self._incr("backend.rpc_stale_replies")
                    reply = recv_msg(worker.conn)
            except (ConnectionClosed, OSError, ValueError) as e:
                _fail_future(
                    fut,
                    BrokenProcessPool(
                        f"socket worker {worker.worker_id} died "
                        f"mid-chunk: {e}"
                    ),
                )
                if not worker.closing:
                    self._mark_dead(worker)
                return
            if (
                isinstance(reply, dict)
                and reply.get("type") == "result"
            ):
                fut.set_result(reply["value"])
            else:
                self._incr("backend.remote_errors")
                message = (
                    reply.get("message")
                    if isinstance(reply, dict)
                    else repr(reply)
                )
                _fail_future(
                    fut,
                    RuntimeError(
                        f"socket worker {worker.worker_id}: {message}"
                    ),
                )

    def _send_shutdown(self, worker: _RemoteWorker) -> None:
        try:
            send_msg(worker.conn, {"type": "shutdown"})
        except (ConnectionClosed, OSError):
            self._incr("backend.shutdown_send_failures")
        _close_quietly(worker.conn)

    def _reap(self, worker: _RemoteWorker) -> None:
        _close_quietly(worker.conn)
        if worker.proc.poll() is None:
            worker.proc.terminate()
            try:
                worker.proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                worker.proc.kill()
                worker.proc.wait()


def _fail_future(fut: Future, exc: BaseException) -> None:
    if not fut.done():
        try:
            fut.set_exception(exc)
        except InvalidStateError:
            # Lost the race with a concurrent completion; the result
            # stands and nothing waits on this exception.
            pass


def _close_quietly(sock: socket.socket) -> None:
    try:
        sock.close()
    except OSError:
        pass
