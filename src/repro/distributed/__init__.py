"""Pluggable distributed execution for correction and MapReduce.

The Backend protocol (:mod:`repro.distributed.backend`) abstracts the
execution substrate under the reliable layer's one fault model:
local threads, local forked processes, or socket-connected worker
processes owning spectrum shards (:mod:`repro.distributed.shards`,
:mod:`repro.distributed.socket_backend`).  See docs/distributed.md.
"""

from .backend import (
    BACKEND_NAMES,
    Backend,
    LocalForkBackend,
    LocalThreadsBackend,
    create_backend,
)
from .framing import ConnectionClosed, recv_msg, send_msg
from .shards import (
    ShardClientPool,
    ShardLookupError,
    ShardPlan,
    ShardRouter,
    SpectrumShard,
    split_spectrum,
)

__all__ = [
    "BACKEND_NAMES",
    "Backend",
    "ConnectionClosed",
    "LocalForkBackend",
    "LocalThreadsBackend",
    "ShardClientPool",
    "ShardLookupError",
    "ShardPlan",
    "ShardRouter",
    "SpectrumShard",
    "create_backend",
    "recv_msg",
    "send_msg",
    "split_spectrum",
]
