"""Shared-memory backing for the immutable k-spectrum.

The batch-correction workers only ever *read* the fitted
:class:`~repro.kmer.spectrum.KmerSpectrum`, so there is no reason for
more than one physical copy to exist no matter how many workers run.
Two backings achieve that:

- **fork inheritance** (the engine default): the spectrum arrays live
  in ordinary parent memory and reach the children through fork's
  copy-on-write pages.  Since nobody writes them, the pages are never
  duplicated.
- **``multiprocessing.shared_memory``** (this module): the arrays are
  moved into named POSIX shared-memory segments before the pool is
  created.  The sharing is then explicit and independent of
  copy-on-write semantics — useful when the surrounding process
  touches adjacent heap pages heavily, and a stepping stone for
  spawn-based platforms where fork inheritance does not exist.

:class:`SharedSpectrumHandle` re-backs a spectrum in place and restores
the original arrays on :meth:`close` (or context-manager exit), so the
caller's corrector object is untouched outside the engine run.
"""

from __future__ import annotations

import numpy as np

from ..kmer.spectrum import KmerSpectrum

try:  # pragma: no cover - exercised indirectly on platforms without it
    from multiprocessing import shared_memory as _shm

    HAVE_SHARED_MEMORY = True
except ImportError:  # pragma: no cover
    _shm = None
    HAVE_SHARED_MEMORY = False


class SharedSpectrumHandle:
    """Temporarily back a :class:`KmerSpectrum`'s arrays with shared memory.

    Usage::

        with SharedSpectrumHandle(corrector.spectrum):
            ...  # fork workers; kmers/counts live in shared segments

    On exit the spectrum points at its original (private) arrays again
    and the segments are closed and unlinked.  Creating a handle on a
    platform without ``multiprocessing.shared_memory`` raises
    ``RuntimeError`` — callers should check :data:`HAVE_SHARED_MEMORY`
    (the engine falls back to fork inheritance).
    """

    def __init__(self, spectrum: KmerSpectrum):
        if not HAVE_SHARED_MEMORY:  # pragma: no cover
            raise RuntimeError(
                "multiprocessing.shared_memory is unavailable on this platform"
            )
        self.spectrum = spectrum
        self._original = (spectrum.kmers, spectrum.counts)
        self._segments: list = []
        self._closed = False
        try:
            spectrum.kmers = self._share(spectrum.kmers)
            spectrum.counts = self._share(spectrum.counts)
        except Exception:
            self.close()
            raise

    def _share(self, arr: np.ndarray) -> np.ndarray:
        # Zero-byte segments are rejected by the OS; keep 1 byte and an
        # empty view over it.
        seg = _shm.SharedMemory(create=True, size=max(1, arr.nbytes))
        self._segments.append(seg)
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
        view[...] = arr
        return view

    @property
    def nbytes(self) -> int:
        """Total bytes held in shared segments."""
        return sum(seg.size for seg in self._segments)

    def close(self) -> None:
        """Restore the private arrays and release the segments."""
        if self._closed:
            return
        self._closed = True
        self.spectrum.kmers, self.spectrum.counts = self._original
        for seg in self._segments:
            try:
                seg.close()
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments.clear()

    def __enter__(self) -> "SharedSpectrumHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
