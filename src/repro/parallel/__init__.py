"""Parallel batch-correction engine (shared-spectrum workers).

See :mod:`repro.parallel.engine` for the execution model and
:mod:`repro.parallel.shared` for the shared-memory spectrum backing.
"""

from .engine import ParallelRunReport, correct_in_parallel, correct_stream
from .shared import HAVE_SHARED_MEMORY, SharedSpectrumHandle

__all__ = [
    "ParallelRunReport",
    "correct_in_parallel",
    "correct_stream",
    "SharedSpectrumHandle",
    "HAVE_SHARED_MEMORY",
]
