"""Parallel batch correction over a shared, immutable k-spectrum.

Reptile and REDEEM correct each read independently against read-only
phase-1 structures (spectrum, tiles, EM attempt estimates) — an
embarrassingly parallel workload.  This engine forks ``workers``
processes over contiguous read chunks:

- the fitted corrector and the input :class:`ReadSet` are installed in
  a module global *before* the pool is created, so children receive
  them through fork's copy-on-write pages — the spectrum is
  materialized once, never pickled per task (RECKONER's and BFC's
  shared-index architecture).  ``spectrum_backing="shared"`` moves the
  spectrum arrays into explicit ``multiprocessing.shared_memory``
  segments for the duration of the run;
- each task submission carries only ``(chunk_start, chunk_stop)``;
  each result returns the corrected code block plus a per-chunk
  counter dict, merged into one :class:`Counters` run report;
- results are reassembled **in read order** regardless of completion
  order, so the output is bitwise identical to the serial path;
- retries, per-attempt timeouts (straggler re-execution in the
  parent), worker-crash pool rebuilds, and skip mode come from
  :mod:`repro.mapreduce.reliable` — the two runtimes share one fault
  model.  A chunk that keeps failing degrades to per-read correction;
  a read that *still* fails is passed through uncorrected and counted
  as ``skipped_reads``;
- ``workers=1`` (or a platform without fork, or fewer chunks than
  would benefit) runs the same chunk loop serially in-process — same
  code path, same counters, no pool;
- SIGTERM/SIGINT during the chunk loop are handled gracefully: the
  chunk in flight is drained, a ``shutdown.requested`` metric is
  recorded, and ``KeyboardInterrupt`` is raised at the next chunk
  boundary (never mid-chunk), per the REP401 re-raise contract.  A
  second signal aborts immediately.

Any corrector exposing ``correct_chunk(reads) -> (ReadSet, dict)``
with per-read-independent semantics can be driven by this engine;
:class:`~repro.core.reptile.ReptileCorrector` and
:class:`~repro.core.redeem.RedeemCorrector` both do.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from .. import telemetry
from ..io.readset import ReadSet
from ..mapreduce.reliable import _account_skip, _execute_phase, _PoolManager
from ..mapreduce.types import Counters, RetryPolicy

#: Corrector + full input ReadSet, installed before the pool forks so
#: workers inherit them copy-on-write instead of receiving pickles.
_WORKER_STATE: tuple | None = None


@dataclass(frozen=True)
class _BatchTask:
    """Lightweight task descriptor (the only object pickled per submit
    besides the chunk bounds)."""

    name: str


class _ShutdownFlag:
    """Latch set by a deferred SIGTERM/SIGINT; callable for the
    ``should_stop`` hook of the chunk loop."""

    def __init__(self) -> None:
        self.requested = False
        self.signum: int | None = None

    def __call__(self) -> bool:
        return self.requested


@contextmanager
def _graceful_signals(counters: Counters):
    """Defer SIGTERM/SIGINT to chunk boundaries for the enclosed scope.

    The first signal records a ``shutdown.requested`` metric and arms
    the returned :class:`_ShutdownFlag`; the chunk loop then finishes
    (drains) the chunk in flight and raises ``KeyboardInterrupt`` at
    the next boundary — never mid-chunk, so no partially corrected
    block is ever observable.  A second signal aborts immediately (the
    escape hatch for a wedged chunk).  Outside the main thread — where
    handlers cannot be installed — the flag simply never arms and
    behavior is unchanged.  Previous handlers are always restored.
    """
    flag = _ShutdownFlag()

    def _handler(signum, frame):
        if flag.requested:
            raise KeyboardInterrupt(
                f"second signal {signum}; aborting immediately"
            )
        flag.requested = True
        flag.signum = signum
        counters.incr("shutdown.requested")

    previous: dict[int, object] = {}
    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                previous[signum] = signal.signal(signum, _handler)
            except (ValueError, OSError):  # pragma: no cover - exotic host
                pass
    try:
        yield flag
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)


def _call_chunk(corrector, reads: ReadSet) -> tuple[ReadSet, dict]:
    """Correct one chunk, normalizing the corrector's return shape."""
    if hasattr(corrector, "correct_chunk"):
        corrected, stats = corrector.correct_chunk(reads)
    else:
        corrected, stats = corrector.correct(reads), {}
    return corrected, {k: int(v) for k, v in stats.items()}


def _chunk_attempt(payload: tuple) -> tuple[tuple[int, np.ndarray], dict]:
    """Worker entry point: correct reads ``[start, stop)`` of the
    inherited ReadSet against the inherited corrector.

    The attempt number is published through
    :func:`repro.mapreduce.faults.set_current_attempt`, exactly as the
    MapReduce attempts do, so the deterministic fault-injection harness
    (attempt-gated transient faults) drives this engine too.
    """
    from ..mapreduce import faults

    _task, bounds, attempt = payload
    start, stop = bounds
    corrector, reads = _WORKER_STATE
    sub = reads.subset(np.arange(start, stop))
    faults.set_current_attempt(attempt)
    try:
        corrected, stats = _call_chunk(corrector, sub)
    finally:
        faults.set_current_attempt(0)
    if corrected.codes.shape != sub.codes.shape:
        raise RuntimeError(
            "parallel correction requires substitution-only correctors "
            f"(chunk shape changed {sub.codes.shape} -> {corrected.codes.shape})"
        )
    stats["chunks_corrected"] = 1
    stats["reads_corrected"] = stop - start
    return (start, corrected.codes), stats


def _skip_chunk(
    task: _BatchTask, bounds: tuple, policy: RetryPolicy, counters: Counters
) -> tuple[int, np.ndarray]:
    """Degraded path for a chunk that failed every attempt: correct its
    reads one at a time, passing poison reads through uncorrected."""
    start, stop = bounds
    corrector, reads = _WORKER_STATE
    blocks: list[np.ndarray] = []
    for i in range(start, stop):
        sub = reads.subset(np.array([i]))
        try:
            corrected, stats = _call_chunk(corrector, sub)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception:
            # "skipped_records" keeps the reliable layer's skip budget
            # (RetryPolicy.max_skipped_records) authoritative here too.
            _account_skip(
                counters,
                policy,
                {
                    "skipped_reads": 1,
                    "skipped_records": 1,
                    "reads_corrected": 1,
                },
            )
            blocks.append(sub.codes)
        else:
            stats["reads_corrected"] = 1
            counters.merge(stats)
            blocks.append(corrected.codes)
    counters.incr("chunks_degraded")
    return (start, np.concatenate(blocks, axis=0))


@dataclass
class ParallelRunReport:
    """Corrected reads plus the run's execution record.

    Since the telemetry layer landed this is a **compatibility shim**:
    the authoritative execution record is the ambient
    :mod:`repro.telemetry` session (span ``parallel.correct``, counters
    in the session registry, serialized by ``--report``).  The class
    and its :meth:`summary` are kept byte-for-byte so existing
    consumers (benchmarks, tests, scripts) continue to work unchanged.
    """

    reads: ReadSet
    counters: Counters
    n_workers: int
    chunk_size: int
    n_chunks: int
    #: ``"parallel"`` (forked pool) or ``"serial"`` (in-process fallback).
    mode: str
    wall_seconds: float = 0.0
    #: Bytes of spectrum data re-backed by shared memory (0 under
    #: fork inheritance).
    shared_bytes: int = 0
    extra: dict = field(default_factory=dict)

    def summary(self) -> dict:
        out = {
            "mode": self.mode,
            "workers": self.n_workers,
            "chunk_size": self.chunk_size,
            "chunks": self.n_chunks,
            "wall_seconds": round(self.wall_seconds, 4),
            "shared_bytes": self.shared_bytes,
        }
        out.update(self.counters.as_dict())
        return out


def _resolve_backend(backend, workers: int):
    """Normalize the ``backend`` argument to ``(instance | None, owned)``.

    A string names a registry backend created — and therefore shut
    down — by the engine; an instance is caller-owned and survives the
    run (so a stream or a service can keep remote workers warm across
    blocks).  ``None`` keeps the legacy fork-pool path untouched.
    """
    if backend is None:
        return None, False
    if isinstance(backend, str):
        from ..distributed.backend import create_backend

        return create_backend(backend, workers=workers), True
    return backend, False


def _chunk_bounds(n_reads: int, chunk_size: int) -> list[tuple[int, int]]:
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    return [
        (i, min(i + chunk_size, n_reads))
        for i in range(0, n_reads, chunk_size)
    ]


def correct_stream(
    corrector,
    blocks,
    workers: int = 1,
    chunk_size: int = 2048,
    policy: RetryPolicy | None = None,
    counters: Counters | None = None,
    spectrum_backing: str = "inherit",
    pool_hit: bool | None = None,
    backend=None,
):
    """Drive the chunk loop over a *stream* of ReadSet blocks.

    The out-of-core front half of :func:`correct_in_parallel`: each
    block (typically ``workers × chunk_size`` reads straight from
    :func:`repro.io.fastq.read_fastq_chunks`) runs through the same
    chunk loop — same counters, same fault model, same bitwise
    guarantee — then is yielded as ``(block, report)`` so the caller
    can write corrected output incrementally and drop the block.  Only
    one block of reads is ever resident.
    """
    if counters is None:
        counters = telemetry.active_counters() or Counters()
    backend_obj, owned = _resolve_backend(backend, workers)
    try:
        for block in blocks:
            report = correct_in_parallel(
                corrector,
                block,
                workers=workers,
                chunk_size=chunk_size,
                policy=policy,
                counters=counters,
                spectrum_backing=spectrum_backing,
                pool_hit=pool_hit,
                backend=backend_obj,
            )
            telemetry.count("stream_blocks")
            telemetry.count("stream_reads", block.n_reads)
            yield block, report
    finally:
        if owned and backend_obj is not None:
            backend_obj.shutdown()


def correct_in_parallel(
    corrector,
    reads: ReadSet,
    workers: int = 1,
    chunk_size: int = 2048,
    policy: RetryPolicy | None = None,
    counters: Counters | None = None,
    spectrum_backing: str = "inherit",
    pool_hit: bool | None = None,
    backend=None,
) -> ParallelRunReport:
    """Correct ``reads`` in ``chunk_size`` batches across ``workers``
    processes; bitwise identical to the serial path.

    ``backend`` selects the execution substrate: ``None`` keeps the
    legacy fork pool; a registry name (``"threads"`` / ``"fork"`` /
    ``"socket"``) or a :class:`repro.distributed.Backend` instance
    routes the same chunk loop — same fault model, same bitwise
    guarantee — through that substrate.  Instances are caller-owned
    (not shut down here), so socket workers stay warm across calls.

    ``spectrum_backing="shared"`` re-backs ``corrector.spectrum``'s
    arrays with ``multiprocessing.shared_memory`` for the duration of
    the run (restored afterwards); ``"inherit"`` relies on fork
    copy-on-write.  Platforms without fork — and ``workers=1`` — take
    the serial fallback through the identical chunk loop.

    ``pool_hit`` records spectrum provenance when the corrector came
    from the service's :class:`~repro.service.pool.SpectrumPool`
    (True: reused warm, False: freshly built into the pool, None: no
    pool involved).  It only annotates the run span/counters — a
    pooled corrector is handed to forked workers copy-on-write exactly
    like a freshly fitted one, so no execution path changes.
    """
    if spectrum_backing not in ("inherit", "shared"):
        raise ValueError(
            f"spectrum_backing must be 'inherit' or 'shared', "
            f"got {spectrum_backing!r}"
        )
    if counters is None:
        counters = telemetry.active_counters() or Counters()
    if policy is None:
        policy = RetryPolicy(max_retries=1)
    bounds = _chunk_bounds(reads.n_reads, chunk_size)
    can_fork = hasattr(os, "fork")
    backend_obj, owned_backend = _resolve_backend(backend, workers)
    if backend_obj is not None:
        use_pool = backend_obj.want_pool(workers, len(bounds))
    else:
        use_pool = workers > 1 and can_fork and len(bounds) > 1
    task = _BatchTask(name=f"correct[{type(corrector).__name__}]")

    shared_bytes = 0
    shared_handle = None
    if spectrum_backing == "shared" and getattr(corrector, "spectrum", None) is not None:
        from .shared import HAVE_SHARED_MEMORY, SharedSpectrumHandle

        if HAVE_SHARED_MEMORY:
            shared_handle = SharedSpectrumHandle(corrector.spectrum)
            shared_bytes = shared_handle.nbytes

    global _WORKER_STATE  # repro: noqa[REP301] -- install-before-fork pattern: set in the parent before the pool exists, restored in the finally; children only read
    prev_state = _WORKER_STATE
    # Installed before the pool exists: forked children inherit it, and
    # the parent needs it for the serial path, straggler re-execution,
    # and skip mode.
    _WORKER_STATE = (corrector, reads)
    pool = None
    t0 = time.perf_counter()
    with telemetry.span(
        "parallel.correct",
        workers=workers if use_pool else 1,
        chunks=len(bounds),
        mode="parallel" if use_pool else "serial",
        backend=(
            backend_obj.name if (backend_obj is not None and use_pool)
            else ("fork" if use_pool else "serial")
        ),
        corrector=type(corrector).__name__,
        spectrum_provenance=(
            "fitted" if pool_hit is None
            else ("pool-hit" if pool_hit else "pool-miss")
        ),
    ):
        try:
            if use_pool:
                if backend_obj is not None:
                    # State install happens *after* _WORKER_STATE is
                    # set: fork-based backends snapshot it at pool
                    # creation, the socket backend ships shards.
                    backend_obj.install_state(corrector, reads)
                    pool = backend_obj
                else:
                    pool = _PoolManager(workers)
            with _graceful_signals(counters) as stop_flag:
                results = _execute_phase(
                    _chunk_attempt, task, bounds, policy, counters, pool,
                    "correct", _skip_chunk, should_stop=stop_flag,
                )
        finally:
            if pool is not None and pool is not backend_obj:
                pool.shutdown()
            if backend_obj is not None:
                counters.merge(backend_obj.harvest())
                if owned_backend:
                    backend_obj.shutdown()
            _WORKER_STATE = prev_state
            if shared_handle is not None:
                shared_handle.close()
        out = reads.copy()
        for (start, stop), (res_start, codes) in zip(bounds, results):
            if res_start != start or codes.shape != (stop - start, out.max_length):
                raise RuntimeError(
                    f"chunk result misaligned: expected [{start}, {stop}), "
                    f"got start {res_start} shape {codes.shape}"
                )
            out.codes[start:stop] = codes
    wall = time.perf_counter() - t0
    counters.incr("bases_changed_total", int((out.codes != reads.codes).sum()))
    telemetry.gauge("parallel_shared_bytes", shared_bytes)
    telemetry.timing("parallel_correct_seconds", wall)
    return ParallelRunReport(
        reads=out,
        counters=counters,
        n_workers=workers if use_pool else 1,
        chunk_size=chunk_size,
        n_chunks=len(bounds),
        mode="parallel" if use_pool else "serial",
        wall_seconds=wall,
        shared_bytes=shared_bytes,
    )
