"""Local MapReduce engine: tasks, serial/multiprocess execution,
pipelines with stage reports (the Hadoop stand-in for CLOSET)."""

from .engine import run_task
from .pipeline import Pipeline, StageReport
from .types import (
    Counters,
    MapReduceTask,
    identity_mapper,
    identity_reducer,
)

__all__ = [
    "MapReduceTask",
    "Counters",
    "identity_mapper",
    "identity_reducer",
    "run_task",
    "Pipeline",
    "StageReport",
]
