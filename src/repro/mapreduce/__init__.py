"""Local MapReduce engine: tasks, serial/multiprocess execution,
fault-tolerant attempts with bad-record skipping, deterministic fault
injection, and checkpointed pipelines (the Hadoop stand-in for CLOSET)."""

from .engine import SpilledPartition, run_task, stable_partition
from .faults import CORRUPTED, FaultPlan, FaultSpec, InjectedFault
from .pipeline import (
    CheckpointStore,
    Pipeline,
    StageReport,
    chain_fingerprint,
    fingerprint_data,
)
from .reliable import call_with_retries, run_task_reliable
from .types import (
    Counters,
    FatalTaskError,
    MapReduceTask,
    RetryPolicy,
    SkipBudgetExceeded,
    identity_mapper,
    identity_reducer,
)

__all__ = [
    "MapReduceTask",
    "Counters",
    "RetryPolicy",
    "FatalTaskError",
    "SkipBudgetExceeded",
    "identity_mapper",
    "identity_reducer",
    "run_task",
    "run_task_reliable",
    "call_with_retries",
    "stable_partition",
    "SpilledPartition",
    "Pipeline",
    "StageReport",
    "CheckpointStore",
    "fingerprint_data",
    "chain_fingerprint",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "CORRUPTED",
]
