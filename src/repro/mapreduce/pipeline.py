"""Chained MapReduce jobs with timing, counters, and stage checkpoints.

The CLOSET implementation is 'a series of data transformations, where
each transformation is a single map-reduce task' (Sec. 4.4); a
:class:`Pipeline` runs such a series, feeding each task's output to the
next and recording the wall time and counters of every stage — the raw
material of Table 4.3.

With a ``checkpoint_dir``, each completed stage's output is
materialized to disk next to a JSON manifest (stage name, input
fingerprint, counters) — the local analogue of Hadoop persisting every
job's output to HDFS.  A later :meth:`Pipeline.run` over the same
inputs resumes from the last completed checkpoint instead of stage 0,
so a crash mid-pipeline costs only the unfinished stage.  Fingerprints
chain — stage *i*'s identity covers the original inputs plus every
upstream stage name — so a checkpoint is only reused when everything
that produced it is unchanged.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import time
from dataclasses import dataclass, field
from pathlib import Path

from .. import telemetry
from .engine import run_task
from .types import KV, Counters, MapReduceTask, RetryPolicy


@dataclass
class StageReport:
    """Execution record of one pipeline stage."""

    name: str
    seconds: float
    n_output: int
    counters: dict = field(default_factory=dict)
    task_attempts: int = 0
    retries: int = 0
    skipped_records: int = 0
    from_checkpoint: bool = False

    @classmethod
    def from_counters(
        cls,
        name: str,
        seconds: float,
        n_output: int,
        counters: dict,
        from_checkpoint: bool = False,
    ) -> "StageReport":
        return cls(
            name=name,
            seconds=seconds,
            n_output=n_output,
            counters=counters,
            task_attempts=counters.get("task_attempts", 0),
            retries=counters.get("retries", 0),
            skipped_records=counters.get("skipped_records", 0),
            from_checkpoint=from_checkpoint,
        )


def fingerprint_data(data) -> str:
    """Stable content fingerprint of picklable stage inputs."""
    return hashlib.sha256(
        pickle.dumps(data, protocol=pickle.HIGHEST_PROTOCOL)
    ).hexdigest()


def chain_fingerprint(prev: str, stage_name: str, index: int) -> str:
    """Fingerprint of stage ``index + 1``'s input, given stage ``index``'s.

    The engine is deterministic, so (input fingerprint, stage chain)
    identifies every intermediate dataset without hashing it.
    """
    return hashlib.sha256(
        f"{prev}|{index}|{stage_name}".encode()
    ).hexdigest()


class CheckpointStore:
    """Materialized stage outputs + manifests under a run directory."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _stem(self, name: str, index: int) -> Path:
        slug = re.sub(r"[^A-Za-z0-9_.-]+", "_", name)
        return self.root / f"stage{index:03d}-{slug}"

    def save(
        self,
        name: str,
        index: int,
        fingerprint: str,
        data,
        *,
        seconds: float = 0.0,
        counters: dict | None = None,
    ) -> None:
        """Atomically persist one stage's output and its manifest."""
        stem = self._stem(name, index)
        tmp = stem.with_suffix(".pkl.tmp")
        with open(tmp, "wb") as fh:
            pickle.dump(data, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, stem.with_suffix(".pkl"))
        manifest = {
            "stage": name,
            "index": index,
            "fingerprint": fingerprint,
            "seconds": seconds,
            "n_output": len(data) if hasattr(data, "__len__") else None,
            "counters": counters or {},
            "written_at": time.time(),  # repro: noqa[REP103] -- checkpoint manifest metadata; never compared or fed back into algorithm output
        }
        tmp = stem.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(manifest, indent=1, default=str))
        os.replace(tmp, stem.with_suffix(".json"))

    def load(self, name: str, index: int, fingerprint: str):
        """Return ``(data, manifest)`` if a matching checkpoint exists."""
        stem = self._stem(name, index)
        manifest_path = stem.with_suffix(".json")
        data_path = stem.with_suffix(".pkl")
        if not (manifest_path.exists() and data_path.exists()):
            return None
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if manifest.get("fingerprint") != fingerprint:
            return None
        try:
            with open(data_path, "rb") as fh:
                data = pickle.load(fh)  # repro: noqa[REP605] -- same-process trust: fingerprint-checked checkpoint this pipeline wrote itself
        except (OSError, pickle.UnpicklingError, EOFError):
            return None
        return data, manifest

    def clear(self) -> None:
        for path in self.root.glob("stage*"):
            path.unlink(missing_ok=True)


class Pipeline:
    """Run MapReduce tasks back to back, collecting stage reports.

    ``policy`` routes every stage through the fault-tolerant engine;
    ``checkpoint_dir`` enables stage materialization and crash resume.
    """

    def __init__(
        self,
        tasks: list[MapReduceTask],
        n_workers: int = 1,
        spill_dir: str | None = None,
        policy: RetryPolicy | None = None,
        checkpoint_dir: str | Path | None = None,
    ):
        self.tasks = list(tasks)
        self.n_workers = n_workers
        self.spill_dir = spill_dir
        self.policy = policy
        self.store = CheckpointStore(checkpoint_dir) if checkpoint_dir else None
        self.reports: list[StageReport] = []

    def run(self, inputs: list[KV], resume: bool = True) -> list[KV]:
        """Execute every stage; returns the final stage's output.

        With checkpointing enabled and ``resume=True``, the longest
        prefix of stages whose checkpoints match the input fingerprint
        chain is loaded from disk instead of re-executed.
        """
        data = inputs
        self.reports = []
        fingerprint = fingerprint_data(inputs) if self.store else ""
        start = 0
        if self.store is not None and resume:
            for i, task in enumerate(self.tasks):
                cached = self.store.load(task.name, i, fingerprint)
                if cached is None:
                    break
                data, manifest = cached
                telemetry.count("pipeline_stages_resumed")
                self.reports.append(
                    StageReport.from_counters(
                        name=task.name,
                        seconds=float(manifest.get("seconds", 0.0)),
                        n_output=len(data),
                        counters=manifest.get("counters", {}),
                        from_checkpoint=True,
                    )
                )
                fingerprint = chain_fingerprint(fingerprint, task.name, i)
                start = i + 1

        for i in range(start, len(self.tasks)):
            task = self.tasks[i]
            counters = Counters()
            with telemetry.span(f"pipeline.{task.name}", index=i):
                t0 = time.perf_counter()
                data = run_task(
                    task,
                    data,
                    n_workers=self.n_workers,
                    counters=counters,
                    spill_dir=self.spill_dir,
                    policy=self.policy,
                )
                seconds = time.perf_counter() - t0
                if self.store is not None:
                    with telemetry.span("pipeline.checkpoint_save"):
                        self.store.save(
                            task.name,
                            i,
                            fingerprint,
                            data,
                            seconds=seconds,
                            counters=counters.as_dict(),
                        )
                    fingerprint = chain_fingerprint(fingerprint, task.name, i)
            telemetry.merge_counters(counters)
            telemetry.count("pipeline_stages_run")
            telemetry.tick("stages", total=len(self.tasks), unit="stages")
            self.reports.append(
                StageReport.from_counters(
                    name=task.name,
                    seconds=seconds,
                    n_output=len(data),
                    counters=counters.as_dict(),
                )
            )
        return data

    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.reports)

    def total_counter(self, name: str) -> int:
        """Sum one counter across every stage (e.g. ``skipped_records``)."""
        return sum(r.counters.get(name, 0) for r in self.reports)

    def report_table(self) -> list[dict]:
        """Stage timings as plain dicts (bench-friendly)."""
        return [
            {
                "stage": r.name,
                "seconds": r.seconds,
                "outputs": r.n_output,
                "attempts": r.task_attempts,
                "retries": r.retries,
                "skipped": r.skipped_records,
                "cached": r.from_checkpoint,
            }
            for r in self.reports
        ]
