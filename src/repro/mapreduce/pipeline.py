"""Chained MapReduce jobs with per-stage timing and counters.

The CLOSET implementation is 'a series of data transformations, where
each transformation is a single map-reduce task' (Sec. 4.4); a
:class:`Pipeline` runs such a series, feeding each task's output to the
next and recording the wall time and counters of every stage — the raw
material of Table 4.3.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .engine import run_task
from .types import KV, Counters, MapReduceTask


@dataclass
class StageReport:
    """Execution record of one pipeline stage."""

    name: str
    seconds: float
    n_output: int
    counters: dict = field(default_factory=dict)


class Pipeline:
    """Run MapReduce tasks back to back, collecting stage reports."""

    def __init__(
        self,
        tasks: list[MapReduceTask],
        n_workers: int = 1,
        spill_dir: str | None = None,
    ):
        self.tasks = list(tasks)
        self.n_workers = n_workers
        self.spill_dir = spill_dir
        self.reports: list[StageReport] = []

    def run(self, inputs: list[KV]) -> list[KV]:
        """Execute every stage; returns the final stage's output."""
        data = inputs
        self.reports = []
        for task in self.tasks:
            counters = Counters()
            t0 = time.perf_counter()
            data = run_task(
                task,
                data,
                n_workers=self.n_workers,
                counters=counters,
                spill_dir=self.spill_dir,
            )
            self.reports.append(
                StageReport(
                    name=task.name,
                    seconds=time.perf_counter() - t0,
                    n_output=len(data),
                    counters=counters.as_dict(),
                )
            )
        return data

    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.reports)

    def report_table(self) -> list[dict]:
        """Stage timings as plain dicts (bench-friendly)."""
        return [
            {"stage": r.name, "seconds": r.seconds, "outputs": r.n_output}
            for r in self.reports
        ]
