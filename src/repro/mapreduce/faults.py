"""Deterministic fault injection for the MapReduce engine.

A :class:`FaultPlan` wraps a :class:`~repro.mapreduce.types.MapReduceTask`
so its mapper/reducer misbehave in controlled, *reproducible* ways —
raise, hang past a timeout, return corrupted pairs, or kill the worker
process — at configured rates or on configured keys.  Decisions are a
pure function of ``(plan seed, phase, spec, record key)`` via CRC32, so
every recovery path in :mod:`repro.mapreduce.reliable` is testable
without flakiness: the same plan injects the same faults on every run,
under any ``PYTHONHASHSEED``.

Faults are *attempt-gated*: a spec with ``max_attempt=1`` fires only on
attempt 0 (a transient fault that a single retry cures), while
``max_attempt=None`` fires on every attempt (a permanent poison record
that only skip mode can get past).  The reliable engine publishes the
current attempt number through :func:`set_current_attempt` before each
attempt, in the worker process and in the parent alike.
"""

from __future__ import annotations

import errno
import os
import signal
import time
import zlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Mapping

from .types import MapReduceTask

#: Marker substituted for values by ``kind="corrupt"`` faults.
CORRUPTED = "__corrupted__"

_CURRENT_ATTEMPT = 0
_IN_WORKER = False


def set_current_attempt(attempt: int) -> None:
    """Publish the attempt number fault specs gate on (engine-facing)."""
    global _CURRENT_ATTEMPT  # repro: noqa[REP301] -- per-process fault-injection latch; each worker sets only its own copy
    _CURRENT_ATTEMPT = attempt


def current_attempt() -> int:
    return _CURRENT_ATTEMPT


def mark_worker_process() -> None:
    """Pool initializer hook: ``crash`` faults only fire in workers.

    Without this guard a crash fault re-executed serially in the parent
    would take the whole job (and the test process) down with it.
    """
    global _IN_WORKER  # repro: noqa[REP301] -- pool-initializer flag, set once in the child before any task runs
    _IN_WORKER = True


class InjectedFault(RuntimeError):
    """The exception raised by ``kind="raise"`` faults."""


@dataclass(frozen=True)
class FaultSpec:
    """One class of injected fault.

    ``kind``
        ``"raise"`` — raise :class:`InjectedFault`;
        ``"hang"`` — sleep ``hang_seconds`` before proceeding (trips
        per-attempt timeouts, then completes, like a straggler);
        ``"corrupt"`` — emit pairs whose values are replaced with
        :data:`CORRUPTED`;
        ``"crash"`` — ``os._exit`` the worker process (downgraded to
        ``raise`` when running in the parent).
    ``phase``
        ``"map"`` or ``"reduce"`` — which side of the shuffle to hit.
    ``rate``
        Probability per record key, decided deterministically from the
        plan seed (0 disables rate-based firing).
    ``keys``
        Explicit record keys that always fire (in addition to ``rate``).
    ``max_attempt``
        Fire only while ``current_attempt() < max_attempt``; ``None``
        means fire on every attempt (a permanent fault).
    """

    kind: str
    phase: str = "map"
    rate: float = 0.0
    keys: tuple = ()
    max_attempt: int | None = 1
    hang_seconds: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in ("raise", "hang", "corrupt", "crash"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.phase not in ("map", "reduce"):
            raise ValueError(f"unknown fault phase {self.phase!r}")


def _stable_unit(seed: int, spec_index: int, phase: str, key: Any) -> float:
    """Uniform [0, 1) from (seed, spec, phase, key) — hash-seed stable."""
    data = repr((seed, spec_index, phase, key)).encode("utf-8", "backslashreplace")
    return zlib.crc32(data) / 2**32


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the fault specs to inject; wraps tasks picklably."""

    seed: int = 0
    specs: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def wrap(self, task: MapReduceTask) -> MapReduceTask:
        """Return ``task`` with its mapper/reducer under fault injection."""
        map_specs = tuple(s for s in self.specs if s.phase == "map")
        red_specs = tuple(s for s in self.specs if s.phase == "reduce")
        mapper = task.mapper
        reducer = task.reducer
        if map_specs:
            mapper = _FaultyFunc(task.mapper, self.seed, map_specs, "map")
        if red_specs:
            reducer = _FaultyFunc(task.reducer, self.seed, red_specs, "reduce")
        return MapReduceTask(
            name=task.name,
            mapper=mapper,
            reducer=reducer,
            combiner=task.combiner,
        )

    def fires(self, spec: FaultSpec, key: Any) -> bool:
        """Whether ``spec`` fires for ``key`` (ignoring attempt gating)."""
        idx = self.specs.index(spec)
        return _fires(self.seed, idx, spec, key)


def _fires(seed: int, spec_index: int, spec: FaultSpec, key: Any) -> bool:
    if spec.keys and key in spec.keys:
        return True
    if spec.rate > 0.0:
        return _stable_unit(seed, spec_index, spec.phase, key) < spec.rate
    return False


class _FaultyFunc:
    """Picklable mapper/reducer wrapper executing a tuple of FaultSpecs."""

    def __init__(self, inner, seed: int, specs: tuple, phase: str):
        self.inner = inner
        self.seed = seed
        self.specs = specs
        self.phase = phase

    def __call__(self, key, value):
        corrupt = False
        for i, spec in enumerate(self.specs):
            if spec.max_attempt is not None and current_attempt() >= spec.max_attempt:
                continue
            if not _fires(self.seed, i, spec, key):
                continue
            if spec.kind == "raise":
                raise InjectedFault(
                    f"injected {self.phase} fault on key {key!r} "
                    f"(attempt {current_attempt()})"
                )
            if spec.kind == "hang":
                time.sleep(spec.hang_seconds)
            elif spec.kind == "crash":
                if _IN_WORKER:
                    os._exit(13)
                raise InjectedFault(
                    f"injected crash on key {key!r} downgraded outside worker"
                )
            elif spec.kind == "corrupt":
                corrupt = True
        out = self.inner(key, value)
        if corrupt:
            return [(k, CORRUPTED) for k, _ in out]
        return out


# -- process-level fault points (PR-6 chaos harness) --------------------------
#
# The in-process :class:`FaultPlan` above injects faults *inside* a
# mapper/reducer.  The durable job service needs a harsher fault model:
# the whole worker process dies (``kill -9``) or an artifact write hits
# ``ENOSPC`` at an exact, scripted instant.  Process-level fault points
# carry that plan through the environment so it survives ``exec`` into
# a real ``python -m repro serve`` subprocess:
#
#     REPRO_FAULT_POINTS="service.block=kill@2;artifact.write=enospc@1"
#
# Each named point keeps a per-process hit counter; a spec fires when
# its point's counter reaches exactly ``hit`` (``@*`` fires on every
# hit — only meaningful for ``sleep``).  Decisions are a pure function
# of (env plan, hit count), so every chaos schedule is reproducible.

#: Environment variable carrying the process-level fault plan.
FAULT_POINTS_ENV = "REPRO_FAULT_POINTS"

#: Seconds slept by ``sleep`` fault points (stretches job runtime so
#: chaos tests can land signals deterministically mid-run).
SLEEP_POINT_SECONDS = 0.05

_POINT_ACTIONS = ("kill", "enospc", "raise", "sleep")

#: point name -> hits so far in this process.
_POINT_HITS: dict[str, int] = {}


@dataclass(frozen=True)
class ProcessFaultSpec:
    """One scripted process-level fault.

    ``point``
        Name of the fault point (e.g. ``service.before_commit``).
    ``action``
        ``"kill"`` — SIGKILL this process (the chaos-test hammer: no
        handlers, no cleanup, exactly what a ``kill -9`` or OOM does);
        ``"enospc"`` — raise ``OSError(ENOSPC)``;
        ``"raise"`` — raise :class:`InjectedFault`;
        ``"sleep"`` — sleep :data:`SLEEP_POINT_SECONDS` and continue.
    ``hit``
        1-based hit index the spec fires on; ``None`` means every hit.
    """

    point: str
    action: str
    hit: int | None = 1

    def __post_init__(self) -> None:
        if self.action not in _POINT_ACTIONS:
            raise ValueError(f"unknown fault-point action {self.action!r}")


@lru_cache(maxsize=8)
def parse_fault_points(text: str) -> tuple[ProcessFaultSpec, ...]:
    """Parse a ``point=action@hit;...`` plan string (cached per text)."""
    specs: list[ProcessFaultSpec] = []
    for part in text.split(";"):
        part = part.strip()
        if not part:
            continue
        point, sep, rest = part.partition("=")
        if not sep or not point.strip():
            raise ValueError(f"malformed fault point {part!r}")
        action, sep, hit_text = rest.partition("@")
        hit: int | None = 1
        if sep:
            hit = None if hit_text.strip() == "*" else int(hit_text)
        if hit is not None and hit < 1:
            raise ValueError(f"fault-point hit must be >= 1, got {hit}")
        specs.append(
            ProcessFaultSpec(point=point.strip(), action=action.strip(), hit=hit)
        )
    return tuple(specs)


def reset_fault_points() -> None:
    """Clear this process's hit counters (test isolation)."""
    _POINT_HITS.clear()


def hit_fault_point(
    point: str, env: Mapping[str, str] | None = None
) -> None:
    """Mark one hit of ``point``, firing any scripted fault on it.

    A no-op (not even counted) when no plan is configured, so
    production code can call fault points unconditionally.
    """
    plan_text = (os.environ if env is None else env).get(FAULT_POINTS_ENV)
    if not plan_text:
        return
    specs = parse_fault_points(plan_text)
    if not any(s.point == point for s in specs):
        return
    n = _POINT_HITS.get(point, 0) + 1
    _POINT_HITS[point] = n
    for spec in specs:
        if spec.point != point or (spec.hit is not None and spec.hit != n):
            continue
        if spec.action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif spec.action == "enospc":
            raise OSError(
                errno.ENOSPC,
                f"injected ENOSPC at fault point {point!r} (hit {n})",
            )
        elif spec.action == "raise":
            raise InjectedFault(
                f"injected fault at point {point!r} (hit {n})"
            )
        elif spec.action == "sleep":
            time.sleep(SLEEP_POINT_SECONDS)
