"""Fault-tolerant MapReduce execution (the Hadoop recovery model).

CLOSET (Sec. 4.4) assumes a runtime that survives task failures by
re-execution; this module gives the local engine that character.  On
top of :mod:`repro.mapreduce.engine`'s map/shuffle/reduce dataflow it
adds, per map chunk and reduce partition:

- **task attempts** — up to ``1 + RetryPolicy.max_retries`` tries with
  deterministic exponential backoff and jitter between them;
- **per-attempt timeouts** — a pool attempt exceeding
  ``RetryPolicy.task_timeout`` is treated as a straggler and
  re-executed serially in the parent (speculative re-execution);
- **bad-record skip mode** — a chunk still failing after all retries is
  bisected, Hadoop skip-mode style, to isolate the poison record(s),
  which are skipped and accounted in ``Counters`` (``skipped_records``)
  rather than aborting the job;
- **dead-worker degradation** — a crashed pool worker (broken pool)
  recreates the pool and re-runs the affected chunk serially instead of
  killing the job.

Counters are merged **only from successful attempts**, so
``map_input_records`` equals the true input count no matter how many
attempts failed along the way (skipped records are counted as consumed
input *and* as ``skipped_records``).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable

from .. import telemetry
from . import faults
from .engine import (
    SpilledPartition,
    _group_by_key,
    _map_chunk,
    _reduce_partition,
    _sorted_keys,
    _spill_partitions,
    stable_partition,
)
from .types import (
    KV,
    Counters,
    FatalTaskError,
    MapReduceTask,
    RetryPolicy,
    SkipBudgetExceeded,
)


# -- pool management ----------------------------------------------------------
class _PoolManager:
    """A recreatable process pool with a generation token.

    ``recreate(generation)`` is a no-op unless the caller's failing
    future came from the *current* pool — so a burst of futures broken
    by one crashed worker triggers exactly one rebuild.
    """

    def __init__(self, n_workers: int):
        self.n_workers = n_workers
        self.generation = 0
        self._make()

    def _make(self) -> None:
        import multiprocessing as mp

        kwargs: dict = {
            "max_workers": self.n_workers,
            "initializer": faults.mark_worker_process,
        }
        if hasattr(os, "fork"):
            kwargs["mp_context"] = mp.get_context("fork")
        self.executor = ProcessPoolExecutor(**kwargs)

    def submit(self, fn: Callable, payload: tuple):
        return self.executor.submit(fn, payload), self.generation

    def recreate(self, generation: int) -> None:
        if generation == self.generation:
            self.executor.shutdown(wait=False, cancel_futures=True)
            self.generation += 1
            self._make()

    def shutdown(self) -> None:
        self.executor.shutdown(wait=False, cancel_futures=True)


# -- worker entry points ------------------------------------------------------
def _map_attempt(payload: tuple) -> tuple[list[KV], dict]:
    task, chunk, attempt = payload
    faults.set_current_attempt(attempt)
    try:
        return _map_chunk((task, chunk))
    finally:
        faults.set_current_attempt(0)


def _reduce_attempt(payload: tuple) -> tuple[list[KV], dict]:
    task, partition, attempt = payload
    faults.set_current_attempt(attempt)
    try:
        return _reduce_partition((task, partition))
    finally:
        faults.set_current_attempt(0)


# -- recovery core ------------------------------------------------------------
def _run_item(
    worker_fn: Callable,
    task: MapReduceTask,
    item,
    idx: int,
    policy: RetryPolicy,
    counters: Counters,
    pool: _PoolManager | None,
    phase: str,
    skip_fn: Callable,
    fut_gen: tuple | None = None,
):
    """Run one chunk/partition to completion under the retry policy."""
    attempt = 0
    use_pool = pool is not None
    last_exc: BaseException | None = None
    while attempt <= policy.max_retries:
        if attempt > 0:
            counters.incr("retries")
            time.sleep(policy.backoff_seconds(attempt, salt=idx))
        counters.incr("task_attempts")
        gen = -1
        try:
            if use_pool:
                if fut_gen is None:
                    gen = pool.generation
                    fut, gen = pool.submit(worker_fn, (task, item, attempt))
                else:
                    fut, gen = fut_gen
                out, stats = fut.result(timeout=policy.task_timeout)
            else:
                out, stats = worker_fn((task, item, attempt))
            counters.merge(stats)
            return out
        except FuturesTimeout as e:
            # Straggler: abandon the pool attempt (it may still finish,
            # its result is simply never merged) and re-execute in the
            # parent, where progress is guaranteed.
            counters.incr("straggler_reexecutions")
            use_pool = False
            last_exc = e
        except BrokenProcessPool as e:
            counters.incr("worker_crashes")
            pool.recreate(gen)
            use_pool = False
            last_exc = e
        except SkipBudgetExceeded:
            raise
        except (KeyboardInterrupt, SystemExit):
            # Never retried: a user abort / interpreter shutdown must
            # tear the job down, not burn the remaining attempts.
            raise
        except Exception as e:
            last_exc = e
            counters.incr(f"{phase}_attempt_failures")
        fut_gen = None
        attempt += 1
    if policy.skip_bad_records:
        return skip_fn(task, item, policy, counters)
    raise FatalTaskError(
        f"{phase} task over item {idx} of {task.name!r} failed after "
        f"{policy.max_retries + 1} attempts"
    ) from last_exc


def _execute_phase(
    worker_fn: Callable,
    task: MapReduceTask,
    items: list,
    policy: RetryPolicy,
    counters: Counters,
    pool: _PoolManager | None,
    phase: str,
    skip_fn: Callable,
    on_item_done: Callable[[int], None] | None = None,
    should_stop: Callable[[], bool] | None = None,
) -> list:
    """Run every item through ``worker_fn`` with recovery; ordered results.

    ``should_stop`` is the graceful-shutdown hook: it is consulted at
    item boundaries only, so the item in flight always completes (is
    "drained") before the phase aborts with ``KeyboardInterrupt`` —
    which the REP401 contract guarantees propagates through every
    enclosing handler.
    """
    futures: dict[int, tuple | None] = {}
    if pool is not None:
        for i, item in enumerate(items):
            try:
                futures[i] = pool.submit(worker_fn, (task, item, 0))
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception:
                # Pool broken at submit time; _run_item resubmits after
                # the rebuild.  Counted so a swallowed burst is visible.
                counters.incr("presubmit_failures")
                futures[i] = None
    results = []
    for i, item in enumerate(items):
        if should_stop is not None and should_stop():
            counters.incr("chunks_drained", i)
            raise KeyboardInterrupt(
                f"shutdown requested; drained {i}/{len(items)} "
                f"{phase} task(s)"
            )
        results.append(
            _run_item(
                worker_fn, task, item, i, policy, counters, pool, phase,
                skip_fn, futures.get(i),
            )
        )
        telemetry.tick(phase, total=len(items), unit="tasks")
        if on_item_done is not None:
            on_item_done(i)
    return results


# -- skip mode (Hadoop-style bad-record bisection) ---------------------------
def _account_skip(counters: Counters, policy: RetryPolicy, stats: dict) -> None:
    counters.merge(stats)
    if (
        policy.max_skipped_records is not None
        and counters["skipped_records"] > policy.max_skipped_records
    ):
        raise SkipBudgetExceeded(
            f"skipped {counters['skipped_records']} records, budget is "
            f"{policy.max_skipped_records}"
        )


def _skip_map_chunk(
    task: MapReduceTask, chunk: list[KV], policy: RetryPolicy, counters: Counters
) -> list[KV]:
    """Bisect a repeatedly failing map chunk, skipping poison records.

    Runs in the parent at attempt ``max_retries + 1``, so attempt-gated
    (transient) faults are already quiet and only genuinely poisonous
    records keep raising — those are isolated in O(k log n) mapper runs
    and counted as both consumed input and ``skipped_records``.
    """
    out: list[KV] = []
    post_retry_attempt = policy.max_retries + 1

    def rec(records: list[KV]) -> None:
        faults.set_current_attempt(post_retry_attempt)
        try:
            pairs, stats = _map_chunk((task, records))
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception:
            if len(records) == 1:
                _account_skip(
                    counters,
                    policy,
                    {"map_input_records": 1, "skipped_records": 1},
                )
                return
            mid = len(records) // 2
            rec(records[:mid])
            rec(records[mid:])
        else:
            counters.merge(stats)
            out.extend(pairs)

    try:
        rec(list(chunk))
    finally:
        faults.set_current_attempt(0)
    return out


def _skip_reduce_partition(
    task: MapReduceTask, partition, policy: RetryPolicy, counters: Counters
) -> list[KV]:
    """Bisect a failing reduce partition over its key groups.

    A poison *key* is skipped whole: its group never reaches the output
    and its records are counted as ``skipped_records``.
    """
    if isinstance(partition, SpilledPartition):
        partition = partition.load()
    groups = _group_by_key(partition)
    keys = _sorted_keys(groups)
    out: list[KV] = []
    post_retry_attempt = policy.max_retries + 1

    def rec(key_slice: list) -> None:
        faults.set_current_attempt(post_retry_attempt)
        produced: list[KV] = []
        try:
            for k in key_slice:
                produced.extend(task.reducer(k, groups[k]))
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception:
            if len(key_slice) == 1:
                k = key_slice[0]
                _account_skip(
                    counters,
                    policy,
                    {
                        "reduce_input_groups": 1,
                        "skipped_groups": 1,
                        "skipped_records": len(groups[k]),
                    },
                )
                return
            mid = len(key_slice) // 2
            rec(key_slice[:mid])
            rec(key_slice[mid:])
        else:
            counters.merge(
                {
                    "reduce_input_groups": len(key_slice),
                    "reduce_output_records": len(produced),
                }
            )
            out.extend(produced)

    try:
        rec(keys)
    finally:
        faults.set_current_attempt(0)
    return out


# -- the reliable job runner --------------------------------------------------
def run_task_reliable(
    task: MapReduceTask,
    inputs: Iterable[KV],
    n_workers: int = 1,
    n_partitions: int | None = None,
    counters: Counters | None = None,
    spill_dir: str | None = None,
    chunk_size: int = 4096,
    policy: RetryPolicy | None = None,
    backend=None,
) -> list[KV]:
    """Execute one map-reduce job with retries, timeouts, and skip mode.

    Same dataflow and output contract as
    :func:`repro.mapreduce.engine.run_task` (keys reduced in sorted
    order, output concatenated in stable partition order), plus the
    recovery behavior described in the module docstring.

    ``backend`` (a registry name or :class:`repro.distributed.Backend`
    instance) swaps the execution substrate under the identical
    recovery loop; ``None`` keeps the legacy fork pool.  String-named
    backends are created and shut down here; instances are
    caller-owned.
    """
    inputs = list(inputs) if not isinstance(inputs, list) else inputs
    if counters is None:
        counters = telemetry.active_counters() or Counters()
    if n_partitions is None:
        n_partitions = max(1, n_workers)
    if policy is None:
        policy = RetryPolicy()

    chunks = [inputs[i : i + chunk_size] for i in range(0, len(inputs), chunk_size)]
    from ..parallel.engine import _resolve_backend

    backend_obj, owned_backend = _resolve_backend(backend, n_workers)
    if backend_obj is not None:
        pool = (
            backend_obj
            if backend_obj.want_pool(n_workers, len(chunks))
            else None
        )
    else:
        pool = _PoolManager(n_workers) if n_workers > 1 else None
    try:
        with telemetry.span(
            "mapreduce.map", task=task.name, chunks=len(chunks)
        ):
            map_outs = _execute_phase(
                _map_attempt, task, chunks, policy, counters, pool, "map",
                _skip_map_chunk,
            )
        with telemetry.span("mapreduce.shuffle", task=task.name):
            partitions: list[list[KV]] = [[] for _ in range(n_partitions)]
            for pairs in map_outs:
                for k, v in pairs:
                    partitions[stable_partition(k, n_partitions)].append((k, v))

            items: list = partitions
            spills: list[SpilledPartition] | None = None
            if spill_dir is not None:
                items = spills = _spill_partitions(partitions, spill_dir)
                del partitions
                counters.incr("spilled_partitions", len(spills))
                counters.incr("spilled_pairs", sum(s.n_pairs for s in spills))
        on_done = (lambda i: spills[i].delete()) if spills is not None else None
        with telemetry.span(
            "mapreduce.reduce", task=task.name, partitions=n_partitions
        ):
            reduce_outs = _execute_phase(
                _reduce_attempt, task, items, policy, counters, pool, "reduce",
                _skip_reduce_partition, on_item_done=on_done,
            )
    finally:
        if pool is not None and pool is not backend_obj:
            pool.shutdown()
        if backend_obj is not None:
            counters.merge(backend_obj.harvest())
            if owned_backend:
                backend_obj.shutdown()
    out: list[KV] = []
    for pairs in reduce_outs:
        out.extend(pairs)
    return out


def call_with_retries(
    fn: Callable[[], object],
    policy: RetryPolicy,
    counters: Counters | None = None,
    description: str = "operation",
):
    """Retry an arbitrary zero-arg callable under a :class:`RetryPolicy`.

    The function-level analogue of a task attempt, for monolithic
    stages (e.g. a whole-corrector fit) that are not chunked jobs.
    """
    last_exc: BaseException | None = None
    for attempt in range(policy.max_retries + 1):
        if attempt > 0:
            if counters is not None:
                counters.incr("retries")
            time.sleep(policy.backoff_seconds(attempt))
        if counters is not None:
            counters.incr("task_attempts")
        try:
            return fn()
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as e:
            last_exc = e
            if counters is not None:
                counters.incr("attempt_failures")
    raise FatalTaskError(
        f"{description} failed after {policy.max_retries + 1} attempts"
    ) from last_exc


# -- CLI surface --------------------------------------------------------------
def add_reliability_flags(parser) -> None:
    """Attach the shared fault-tolerance flag group to an ArgumentParser."""
    g = parser.add_argument_group("fault tolerance")
    g.add_argument(
        "--max-retries", type=int, default=None,
        help="task attempts beyond the first for each map chunk / "
             "reduce partition (setting any retry flag enables the "
             "reliable execution path)",
    )
    g.add_argument(
        "--task-timeout", type=float, default=None,
        help="seconds before a pool attempt is re-executed as a straggler",
    )
    g.add_argument(
        "--no-skip-bad-records", action="store_true",
        help="fail the job instead of bisecting and skipping poison records",
    )
    g.add_argument(
        "--max-skipped-records", type=int, default=None,
        help="abort once more than this many records have been skipped",
    )
    g.add_argument(
        "--retry-seed", type=int, default=0,
        help="seed for deterministic backoff jitter",
    )
    g.add_argument(
        "--checkpoint-dir", default=None,
        help="directory for stage checkpoints; reruns resume from the "
             "last completed stage",
    )


def policy_from_args(args) -> RetryPolicy | None:
    """Build a RetryPolicy from parsed flags; None if none were set."""
    if (
        args.max_retries is None
        and args.task_timeout is None
        and not args.no_skip_bad_records
        and args.max_skipped_records is None
    ):
        return None
    return RetryPolicy(
        max_retries=3 if args.max_retries is None else args.max_retries,
        task_timeout=args.task_timeout,
        skip_bad_records=not args.no_skip_bad_records,
        max_skipped_records=args.max_skipped_records,
        seed=args.retry_seed,
    )
