"""Local MapReduce execution engine.

Runs a :class:`~repro.mapreduce.types.MapReduceTask` over an in-memory
list of key/value pairs, with

- a **serial** mode (deterministic, used by tests), and
- a **multiprocess** mode: input chunks fan out to a worker pool for
  the map (+combine) phase, intermediate pairs are hash-partitioned,
  and partitions fan out again for the reduce phase — the same
  map/shuffle/reduce dataflow a Hadoop cluster provides, at
  process-pool scale (see DESIGN.md substitutions).

An optional ``spill_dir`` pickles each shuffle partition to disk,
emulating Hadoop's disk-backed shuffle: the parent keeps only
:class:`SpilledPartition` handles, each reduce worker loads its own
partition from disk, and every spill file is deleted as soon as its
reduce completes — so resident memory is bounded by one partition per
worker, not the whole shuffle.

Passing a :class:`~repro.mapreduce.types.RetryPolicy` routes the job
through :mod:`repro.mapreduce.reliable`, which adds per-chunk retries,
timeouts, and bad-record skipping on top of the same dataflow.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import zlib
from typing import Iterable

from .. import telemetry
from .types import KV, Counters, MapReduceTask, RetryPolicy


def _group_by_key(pairs: Iterable[KV]) -> dict:
    groups: dict = {}
    for k, v in pairs:
        groups.setdefault(k, []).append(v)
    return groups


def _sorted_keys(groups: dict) -> list:
    try:
        return sorted(groups)
    except TypeError:
        return sorted(groups, key=repr)


def stable_partition(key, n_partitions: int) -> int:
    """Deterministic shuffle partition for ``key``.

    ``hash()`` on strings varies across interpreter runs under
    ``PYTHONHASHSEED`` randomization, which would make partition
    contents (and hence the partition-ordered output) run-dependent.
    CRC32 over the key's repr is stable across runs, seeds, and
    platforms for the plain keys (str/int/tuple) tasks emit.
    """
    data = repr(key).encode("utf-8", "backslashreplace")
    return zlib.crc32(data) % n_partitions


class SpilledPartition:
    """A shuffle partition materialized to a pickle file on disk.

    Picklable by path, so reduce workers can load their own partition
    without the parent ever holding more than the handle.
    """

    __slots__ = ("path", "n_pairs")

    def __init__(self, path: str, n_pairs: int):
        self.path = path
        self.n_pairs = n_pairs

    def load(self) -> list[KV]:
        with open(self.path, "rb") as fh:
            return pickle.load(fh)  # repro: noqa[REP605] -- same-process trust: reading back a spill file this runtime wrote itself

    def delete(self) -> None:
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass


def _spill_partitions(
    partitions: list[list[KV]], spill_dir: str
) -> list[SpilledPartition]:
    """Write each partition to disk, returning lazy file-backed handles."""
    os.makedirs(spill_dir, exist_ok=True)
    spilled: list[SpilledPartition] = []
    for i, part in enumerate(partitions):
        fd, path = tempfile.mkstemp(prefix=f"part{i}-", dir=spill_dir)  # repro: noqa[REP202] -- spill outlives this function by design; SpilledPartition.delete() releases it per-reduce (reliable.py on_item_done)
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(part, fh, protocol=pickle.HIGHEST_PROTOCOL)
        spilled.append(SpilledPartition(path, len(part)))
        partitions[i] = []  # free the in-memory copy as we go
    return spilled


def _map_chunk(args: tuple) -> tuple[list[KV], dict]:
    """Worker: run the mapper (and combiner) over one input chunk."""
    task, chunk = args
    out: list[KV] = []
    n_in = 0
    for k, v in chunk:
        n_in += 1
        out.extend(task.mapper(k, v))
    n_map_out = len(out)
    if task.combiner is not None:
        combined: list[KV] = []
        for k in (groups := _group_by_key(out)):
            combined.extend(task.combiner(k, groups[k]))
        out = combined
    stats = {
        "map_input_records": n_in,
        "map_output_records": n_map_out,
        "combine_output_records": len(out) if task.combiner else 0,
    }
    return out, stats


def _reduce_partition(args: tuple) -> tuple[list[KV], dict]:
    """Worker: group one partition by key and run the reducer."""
    task, pairs = args
    if isinstance(pairs, SpilledPartition):
        pairs = pairs.load()
    groups = _group_by_key(pairs)
    out: list[KV] = []
    for k in _sorted_keys(groups):
        out.extend(task.reducer(k, groups[k]))
    stats = {
        "reduce_input_groups": len(groups),
        "reduce_output_records": len(out),
    }
    return out, stats


def run_task(
    task: MapReduceTask,
    inputs: Iterable[KV],
    n_workers: int = 1,
    n_partitions: int | None = None,
    counters: Counters | None = None,
    spill_dir: str | None = None,
    chunk_size: int = 4096,
    policy: RetryPolicy | None = None,
) -> list[KV]:
    """Execute one map-reduce job and return its output pairs.

    Output is deterministic: reducers see keys in sorted order and the
    overall output is concatenated in partition order (partitions are
    assigned by :func:`stable_partition`, so the order survives
    ``PYTHONHASHSEED`` changes).  With ``policy`` set, execution goes
    through the fault-tolerant layer (retries, timeouts, skip mode).
    """
    if policy is not None:
        from .reliable import run_task_reliable

        return run_task_reliable(
            task,
            inputs,
            n_workers=n_workers,
            n_partitions=n_partitions,
            counters=counters,
            spill_dir=spill_dir,
            chunk_size=chunk_size,
            policy=policy,
        )
    inputs = list(inputs) if not isinstance(inputs, list) else inputs
    if counters is None:
        counters = telemetry.active_counters() or Counters()
    if n_partitions is None:
        n_partitions = max(1, n_workers)

    if n_workers <= 1:
        with telemetry.span("mapreduce.map", task=task.name):
            mapped, stats = _map_chunk((task, inputs))
            counters.merge(stats)
        with telemetry.span("mapreduce.reduce", task=task.name):
            reduced, rstats = _reduce_partition((task, mapped))
            counters.merge(rstats)
        return reduced

    import multiprocessing as mp

    chunks = [inputs[i : i + chunk_size] for i in range(0, len(inputs), chunk_size)]
    ctx = mp.get_context("fork") if hasattr(os, "fork") else mp.get_context()
    out: list[KV] = []
    with ctx.Pool(n_workers) as pool:
        with telemetry.span("mapreduce.map", task=task.name, chunks=len(chunks)):
            map_results = pool.map(_map_chunk, [(task, c) for c in chunks])
        with telemetry.span("mapreduce.shuffle", task=task.name):
            partitions: list[list[KV]] = [[] for _ in range(n_partitions)]
            for pairs, stats in map_results:
                counters.merge(stats)
                for k, v in pairs:
                    partitions[stable_partition(k, n_partitions)].append((k, v))

        with telemetry.span(
            "mapreduce.reduce", task=task.name, partitions=n_partitions
        ):
            if spill_dir is not None:
                spills = _spill_partitions(partitions, spill_dir)
                del partitions
                counters.incr("spilled_partitions", len(spills))
                counters.incr(
                    "spilled_pairs", sum(s.n_pairs for s in spills)
                )
                # Stream results so each spill file is deleted as soon
                # as its reduce finishes — peak memory is one partition
                # per in-flight worker, not the whole shuffle.
                results = pool.imap(
                    _reduce_partition, [(task, s) for s in spills]
                )
                for (pairs, stats), spill in zip(results, spills):
                    counters.merge(stats)
                    out.extend(pairs)
                    spill.delete()
                return out

            reduce_results = pool.map(
                _reduce_partition, [(task, p) for p in partitions]
            )
    for pairs, stats in reduce_results:
        counters.merge(stats)
        out.extend(pairs)
    return out
