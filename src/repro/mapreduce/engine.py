"""Local MapReduce execution engine.

Runs a :class:`~repro.mapreduce.types.MapReduceTask` over an in-memory
list of key/value pairs, with

- a **serial** mode (deterministic, used by tests), and
- a **multiprocess** mode: input chunks fan out to a worker pool for
  the map (+combine) phase, intermediate pairs are hash-partitioned,
  and partitions fan out again for the reduce phase — the same
  map/shuffle/reduce dataflow a Hadoop cluster provides, at
  process-pool scale (see DESIGN.md substitutions).

An optional ``spill_dir`` pickles each shuffle partition to disk and
reads it back before reducing, emulating Hadoop's disk-backed shuffle
and bounding resident memory.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from typing import Iterable

from .types import KV, Counters, MapReduceTask


def _group_by_key(pairs: Iterable[KV]) -> dict:
    groups: dict = {}
    for k, v in pairs:
        groups.setdefault(k, []).append(v)
    return groups


def _sorted_keys(groups: dict) -> list:
    try:
        return sorted(groups)
    except TypeError:
        return sorted(groups, key=repr)


def _map_chunk(args: tuple) -> tuple[list[KV], dict]:
    """Worker: run the mapper (and combiner) over one input chunk."""
    task, chunk = args
    out: list[KV] = []
    n_in = 0
    for k, v in chunk:
        n_in += 1
        out.extend(task.mapper(k, v))
    n_map_out = len(out)
    if task.combiner is not None:
        combined: list[KV] = []
        for k in (groups := _group_by_key(out)):
            combined.extend(task.combiner(k, groups[k]))
        out = combined
    stats = {
        "map_input_records": n_in,
        "map_output_records": n_map_out,
        "combine_output_records": len(out) if task.combiner else 0,
    }
    return out, stats


def _reduce_partition(args: tuple) -> tuple[list[KV], dict]:
    """Worker: group one partition by key and run the reducer."""
    task, pairs = args
    groups = _group_by_key(pairs)
    out: list[KV] = []
    for k in _sorted_keys(groups):
        out.extend(task.reducer(k, groups[k]))
    stats = {
        "reduce_input_groups": len(groups),
        "reduce_output_records": len(out),
    }
    return out, stats


def run_task(
    task: MapReduceTask,
    inputs: Iterable[KV],
    n_workers: int = 1,
    n_partitions: int | None = None,
    counters: Counters | None = None,
    spill_dir: str | None = None,
    chunk_size: int = 4096,
) -> list[KV]:
    """Execute one map-reduce job and return its output pairs.

    Output is deterministic: reducers see keys in sorted order and the
    overall output is concatenated in partition order.
    """
    inputs = list(inputs) if not isinstance(inputs, list) else inputs
    if counters is None:
        counters = Counters()
    if n_partitions is None:
        n_partitions = max(1, n_workers)

    if n_workers <= 1:
        mapped, stats = _map_chunk((task, inputs))
        counters.merge(stats)
        reduced, rstats = _reduce_partition((task, mapped))
        counters.merge(rstats)
        return reduced

    import multiprocessing as mp

    chunks = [inputs[i : i + chunk_size] for i in range(0, len(inputs), chunk_size)]
    ctx = mp.get_context("fork") if hasattr(os, "fork") else mp.get_context()
    with ctx.Pool(n_workers) as pool:
        map_results = pool.map(_map_chunk, [(task, c) for c in chunks])
        partitions: list[list[KV]] = [[] for _ in range(n_partitions)]
        for pairs, stats in map_results:
            counters.merge(stats)
            for k, v in pairs:
                partitions[hash(k) % n_partitions].append((k, v))

        if spill_dir is not None:
            partitions = _spill_and_reload(partitions, spill_dir)

        reduce_results = pool.map(
            _reduce_partition, [(task, p) for p in partitions]
        )
    out: list[KV] = []
    for pairs, stats in reduce_results:
        counters.merge(stats)
        out.extend(pairs)
    return out


def _spill_and_reload(
    partitions: list[list[KV]], spill_dir: str
) -> list[list[KV]]:
    """Round-trip each partition through a pickle file on disk."""
    os.makedirs(spill_dir, exist_ok=True)
    reloaded: list[list[KV]] = []
    for i, part in enumerate(partitions):
        fd, path = tempfile.mkstemp(prefix=f"part{i}-", dir=spill_dir)
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(part, fh, protocol=pickle.HIGHEST_PROTOCOL)
        with open(path, "rb") as fh:
            reloaded.append(pickle.load(fh))
        os.unlink(path)
    return reloaded
