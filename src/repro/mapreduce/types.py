"""Core MapReduce abstractions.

A :class:`MapReduceTask` bundles a user mapper/reducer (and optional
combiner), mirroring one Hadoop job of Sec. 4.4.  Mappers and reducers
are plain callables::

    mapper(key, value)        -> iterable of (key, value)
    reducer(key, [values...]) -> iterable of (key, value)
    combiner(key, [values...])-> iterable of (key, value)   # optional

For multiprocess execution they must be picklable (module-level
functions or ``functools.partial`` of them).
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Any, Callable, Iterable

KV = tuple[Any, Any]
Mapper = Callable[[Any, Any], Iterable[KV]]
Reducer = Callable[[Any, list], Iterable[KV]]


class FatalTaskError(RuntimeError):
    """A task attempt failed beyond what the :class:`RetryPolicy` allows.

    Raised by the reliable engine once retries are exhausted and
    bad-record skipping is disabled (or its budget is spent).
    """


class SkipBudgetExceeded(FatalTaskError):
    """More records were skipped than ``RetryPolicy.max_skipped_records``."""


@dataclass(frozen=True)
class RetryPolicy:
    """Recovery knobs for the fault-tolerant execution layer.

    Mirrors the Hadoop task-attempt model CLOSET assumes (Sec. 4.4 runs
    on a cluster that re-executes failed tasks): each map chunk / reduce
    partition gets ``1 + max_retries`` attempts, attempts sleep an
    exponentially growing, jittered backoff between retries, and — when
    ``skip_bad_records`` is on — a chunk that still fails is bisected to
    isolate and skip the poison record(s), Hadoop "skip mode" style.

    ``task_timeout`` bounds one *pool* attempt; an attempt that exceeds
    it is treated as a straggler and re-executed serially in the parent
    (speculative re-execution).  Timeouts cannot preempt in-process
    (serial) attempts.
    """

    max_retries: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.25
    task_timeout: float | None = None
    skip_bad_records: bool = True
    max_skipped_records: int | None = None
    seed: int = 0

    def backoff_seconds(
        self, attempt: int, salt: int = 0, rng: Random | None = None
    ) -> float:
        """Deterministic jittered backoff before ``attempt`` (>= 1).

        Jitter never touches the module-global RNG: by default it comes
        from a ``random.Random`` seeded with ``(seed, attempt, salt)``,
        so every retry schedule is reproducible from the policy alone.
        Callers may inject their own (seeded) ``rng`` instead — the
        injection point tests and simulations use to pin or sweep
        backoff behavior.
        """
        base = self.backoff_base * self.backoff_factor ** max(0, attempt - 1)
        if rng is None:
            rng = Random(f"{self.seed}-{attempt}-{salt}")
        return base * (1.0 + self.backoff_jitter * rng.random())


def identity_mapper(key: Any, value: Any) -> Iterable[KV]:
    """Emit the input pair unchanged ('Map: emit each entry as it is')."""
    yield key, value


def identity_reducer(key: Any, values: list) -> Iterable[KV]:
    """Emit every grouped value under its key."""
    for v in values:
        yield key, v


@dataclass(frozen=True)
class MapReduceTask:
    """One map-reduce job: mapper, reducer, optional combiner."""

    name: str
    mapper: Mapper
    reducer: Reducer
    combiner: Reducer | None = None


class Counters:
    """Job counters, aggregated across workers like Hadoop's."""

    def __init__(self) -> None:
        self._data: dict[str, int] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        self._data[name] = self._data.get(name, 0) + amount

    def merge(self, other: "Counters | dict") -> None:
        data = other._data if isinstance(other, Counters) else other
        for k, v in data.items():
            self.incr(k, v)

    def __getitem__(self, name: str) -> int:
        return self._data.get(name, 0)

    def as_dict(self) -> dict[str, int]:
        return dict(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counters({self._data!r})"
