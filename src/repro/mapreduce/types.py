"""Core MapReduce abstractions.

A :class:`MapReduceTask` bundles a user mapper/reducer (and optional
combiner), mirroring one Hadoop job of Sec. 4.4.  Mappers and reducers
are plain callables::

    mapper(key, value)        -> iterable of (key, value)
    reducer(key, [values...]) -> iterable of (key, value)
    combiner(key, [values...])-> iterable of (key, value)   # optional

For multiprocess execution they must be picklable (module-level
functions or ``functools.partial`` of them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

KV = tuple[Any, Any]
Mapper = Callable[[Any, Any], Iterable[KV]]
Reducer = Callable[[Any, list], Iterable[KV]]


def identity_mapper(key: Any, value: Any) -> Iterable[KV]:
    """Emit the input pair unchanged ('Map: emit each entry as it is')."""
    yield key, value


def identity_reducer(key: Any, values: list) -> Iterable[KV]:
    """Emit every grouped value under its key."""
    for v in values:
        yield key, v


@dataclass(frozen=True)
class MapReduceTask:
    """One map-reduce job: mapper, reducer, optional combiner."""

    name: str
    mapper: Mapper
    reducer: Reducer
    combiner: Reducer | None = None


class Counters:
    """Job counters, aggregated across workers like Hadoop's."""

    def __init__(self) -> None:
        self._data: dict[str, int] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        self._data[name] = self._data.get(name, 0) + amount

    def merge(self, other: "Counters | dict") -> None:
        data = other._data if isinstance(other, Counters) else other
        for k, v in data.items():
            self.incr(k, v)

    def __getitem__(self, name: str) -> int:
        return self._data.get(name, 0)

    def as_dict(self) -> dict[str, int]:
        return dict(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counters({self._data!r})"
