"""Neighbor retrieval over a k-spectrum: who is within Hamming d of me?

Two interchangeable strategies, both described in Sec. 2.3:

- :class:`ProbingNeighborIndex` — enumerate the *complete* neighborhood
  of the query and probe the sorted spectrum for each candidate
  (``O(C(k,d) 3^d log |R^k|)`` per query, no extra memory);
- :class:`MaskedKmerIndex` (see ``masked_index``) — replicated
  chunk-masked sorted copies with range scans;
- :class:`PrecomputedNeighborIndex` — one vectorized batch pass that
  materializes the adjacency for *every* spectrum k-mer as CSR arrays
  (the right choice when, as in Reptile/REDEEM, all k-mers will be
  queried anyway).

All return the same answers; the ablation bench compares their cost.
"""

from __future__ import annotations

import numpy as np

from .neighborhood import complete_neighbors
from .spectrum import KmerSpectrum


def xor_patterns(k: int, d: int) -> np.ndarray:
    """All XOR patterns producing codes at Hamming distance 1..d.

    Substituting the base at position ``p`` is XOR-ing its 2-bit group
    with a non-zero delta, so the distance-``<=d`` ball of any code is
    ``code ^ P`` for this fixed pattern set ``P``.
    """
    return complete_neighbors(0, k, d, include_self=False)


class ProbingNeighborIndex:
    """Query-time enumeration + membership probing against a spectrum."""

    def __init__(self, spectrum: KmerSpectrum, d: int):
        self.spectrum = spectrum
        self.k = spectrum.k
        self.d = int(d)
        self._patterns = xor_patterns(self.k, self.d)

    def neighbors(self, code: int, include_self: bool = False) -> np.ndarray:
        """Spectrum k-mers within distance d of ``code`` (sorted)."""
        cand = np.uint64(code) ^ self._patterns
        hits = cand[self.spectrum.contains(cand)]
        if include_self:
            if self.spectrum.contains(np.array([code], dtype=np.uint64))[0]:
                hits = np.append(hits, np.uint64(code))
        return np.sort(hits)

    def neighbors_batch(
        self, codes: np.ndarray, include_self: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """CSR neighborhoods of many codes in one vectorized pass.

        Returns ``(values, indptr)``: row ``i``'s neighbors are
        ``values[indptr[i]:indptr[i+1]]``, sorted, element-wise equal
        to ``neighbors(codes[i], include_self)``.
        """
        codes = np.asarray(codes, dtype=np.uint64).ravel()
        n = codes.size
        if n == 0:
            return (
                np.empty(0, dtype=np.uint64),
                np.zeros(1, dtype=np.int64),
            )
        cand = codes[:, None] ^ self._patterns[None, :]
        if include_self:
            cand = np.concatenate([cand, codes[:, None]], axis=1)
        hit = self.spectrum.contains(cand)
        counts = hit.sum(axis=1)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        values = cand[hit]  # row-major ravel keeps rows contiguous
        rows = np.repeat(np.arange(n, dtype=np.int64), counts)
        order = np.lexsort((values, rows))
        return values[order], indptr


class PrecomputedNeighborIndex:
    """CSR adjacency of the whole spectrum, built in vectorized chunks.

    ``neighbors_of(i)`` returns spectrum *indices* adjacent to spectrum
    entry ``i``; ``neighbors(code)`` mirrors the probing API.
    """

    def __init__(
        self,
        spectrum: KmerSpectrum,
        d: int,
        include_self: bool = False,
        chunk_rows: int = 65536,
    ):
        self.spectrum = spectrum
        self.k = spectrum.k
        self.d = int(d)
        self.include_self = bool(include_self)
        patterns = xor_patterns(self.k, self.d)
        n = spectrum.n_kmers
        m = patterns.size

        indptr = np.zeros(n + 1, dtype=np.int64)
        chunks: list[np.ndarray] = []
        for start in range(0, n, chunk_rows):
            rows = spectrum.kmers[start : start + chunk_rows]
            ball = rows[:, None] ^ patterns[None, :]
            idx = spectrum.index_of(ball.ravel()).reshape(ball.shape)
            hit = idx >= 0
            indptr[start + 1 : start + rows.size + 1] = hit.sum(axis=1)
            # Row-major ravel keeps hits grouped by source row.
            chunks.append(idx[hit].astype(np.int64))
        np.cumsum(indptr, out=indptr)
        self.indptr = indptr
        self.indices = (
            np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
        )
        if include_self and m:
            self._append_self()

    def _append_self(self) -> None:
        """Insert each node at the head of its own adjacency list."""
        n = self.spectrum.n_kmers
        new_indptr = self.indptr + np.arange(n + 1, dtype=np.int64)
        new_indices = np.empty(int(new_indptr[-1]), dtype=np.int64)
        self_pos = new_indptr[:-1]
        new_indices[self_pos] = np.arange(n, dtype=np.int64)
        rest = np.ones(new_indices.size, dtype=bool)
        rest[self_pos] = False
        new_indices[rest] = self.indices
        self.indptr = new_indptr
        self.indices = new_indices

    @property
    def n_edges(self) -> int:
        """Total adjacency entries (directed; excludes self loops unless
        ``include_self``)."""
        return int(self.indices.size)

    def degree(self) -> np.ndarray:
        return np.diff(self.indptr)

    def neighbors_of(self, i: int) -> np.ndarray:
        """Spectrum indices adjacent to spectrum entry ``i``."""
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    def neighbors(self, code: int, include_self: bool = False) -> np.ndarray:
        """Spectrum k-mer codes within distance d of ``code`` (sorted).

        Works for any code, indexed or not: falls back to probing when
        the code itself is absent from the spectrum.
        """
        i = self.spectrum.index_of(np.array([code], dtype=np.uint64))[0]
        if i < 0:
            probe = ProbingNeighborIndex(self.spectrum, self.d)
            return probe.neighbors(code, include_self=False)
        idx = self.neighbors_of(int(i))
        codes = self.spectrum.kmers[idx]
        if self.include_self and not include_self:
            codes = codes[codes != np.uint64(code)]
        elif include_self and not self.include_self:
            codes = np.append(codes, np.uint64(code))
        return np.sort(codes)

    def neighbors_batch(
        self, codes: np.ndarray, include_self: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """CSR neighborhoods of many codes via the precomputed adjacency.

        Returns ``(values, indptr)`` with the same per-row contents as
        :meth:`neighbors` — sorted codes, probing fallback for queries
        absent from the spectrum.
        """
        codes = np.asarray(codes, dtype=np.uint64).ravel()
        n = codes.size
        if n == 0:
            return (
                np.empty(0, dtype=np.uint64),
                np.zeros(1, dtype=np.int64),
            )
        qi = self.spectrum.index_of(codes)
        present = qi >= 0
        pi = qi[present]
        lens = self.indptr[pi + 1] - self.indptr[pi]
        total = int(lens.sum())
        if total:
            # Gather every present row's CSR slice in one flat pass.
            offs = np.repeat(np.cumsum(lens) - lens, lens)
            flat = (
                np.arange(total, dtype=np.int64)
                - offs
                + np.repeat(self.indptr[pi], lens)
            )
            vals = self.spectrum.kmers[self.indices[flat]]
            rows = np.repeat(np.flatnonzero(present), lens)
        else:
            vals = np.empty(0, dtype=np.uint64)
            rows = np.empty(0, dtype=np.int64)
        if self.include_self and not include_self:
            keep = vals != codes[rows]
            vals, rows = vals[keep], rows[keep]
        elif include_self and not self.include_self:
            vals = np.concatenate([vals, codes[present]])
            rows = np.concatenate([rows, np.flatnonzero(present)])
        # Absent queries fall back to probing, exactly like neighbors().
        absent = np.flatnonzero(~present)
        if absent.size:
            probe = ProbingNeighborIndex(self.spectrum, self.d)
            extra = [
                probe.neighbors(int(codes[row]), include_self=False)
                for row in absent.tolist()
            ]
            vals = np.concatenate([vals, *extra])
            rows = np.concatenate(
                [rows, np.repeat(absent, [e.size for e in extra])]
            )
        order = np.lexsort((vals, rows))
        vals, rows = vals[order], rows[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=n), out=indptr[1:])
        return vals, indptr
