"""Bloom prefilter for packed k-mer/tile codes.

A classic Bloom filter (Bloom 1970; applied to k-mer membership at
genome scale by Li's BFC, arXiv:1502.03744, and RECKONER's KMC-backed
pipeline) sitting *in front of* the sorted-array membership structures
(:class:`~repro.kmer.spectrum.KmerSpectrum`,
:class:`~repro.kmer.tiles.TileTable`): a query that the filter rejects
is **definitely absent** — the dominant case when probing d-mutant
candidates, of which only a tiny fraction ever occurs in the data —
so it skips the ``O(log n)`` binary search entirely.  A query the
filter admits may be a false positive and falls through to the exact
sorted-array lookup, which keeps every answer exact: the prefilter can
only ever *save* work, never change a result.

All operations are vectorized over ``uint64`` code arrays: hashing is
two splitmix64 finalizer mixes (deterministic, hash-seed independent),
double-hashed into ``n_hashes`` bit positions of a power-of-two bit
array stored as packed ``uint64`` words.
"""

from __future__ import annotations

import numpy as np

#: Smallest query batch worth routing through the prefilter.  Below
#: this the fixed cost of the vectorized hash pipeline (~a dozen numpy
#: ops) exceeds a direct binary search, so membership structures fall
#: through to plain ``searchsorted`` — results are identical either
#: way, this is purely a constant-factor crossover.
MIN_PREFILTER_BATCH = 32

#: splitmix64 finalizer constants (Steele, Lea & Flood 2014).
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer (uint64 in, uint64 out)."""
    x = (x + _GOLDEN).astype(np.uint64)
    x = (x ^ (x >> np.uint64(30))) * _MIX1
    x = (x ^ (x >> np.uint64(27))) * _MIX2
    return x ^ (x >> np.uint64(31))


class BloomPrefilter:
    """Vectorized Bloom filter over packed ``uint64`` codes.

    Guarantees **zero false negatives**: any code passed to :meth:`add`
    is admitted by every subsequent :meth:`maybe_contains` query.
    False positives occur at the rate set by the sizing formula
    ``m = -n ln p / (ln 2)^2`` (see :meth:`for_capacity`).
    """

    def __init__(self, n_bits: int, n_hashes: int):
        if n_bits < 64 or n_bits & (n_bits - 1):
            raise ValueError("n_bits must be a power of two >= 64")
        if not 1 <= n_hashes <= 16:
            raise ValueError("n_hashes must be in [1, 16]")
        self.n_bits = int(n_bits)
        self.n_hashes = int(n_hashes)
        self._mask = np.uint64(n_bits - 1)
        self._words = np.zeros(n_bits // 64, dtype=np.uint64)
        self.n_added = 0

    # -- sizing --------------------------------------------------------
    @classmethod
    def for_capacity(
        cls, n_items: int, fp_rate: float = 0.01
    ) -> "BloomPrefilter":
        """Size a filter for ``n_items`` distinct codes at ``fp_rate``.

        ``m = ceil(-n ln p / (ln 2)^2)`` rounded up to a power of two,
        ``h = round((m / n) ln 2)`` clipped to ``[1, 16]``.
        """
        if not 0.0 < fp_rate < 1.0:
            raise ValueError("fp_rate must be in (0, 1)")
        n = max(int(n_items), 1)
        m = int(np.ceil(-n * np.log(fp_rate) / (np.log(2.0) ** 2)))
        n_bits = 64
        while n_bits < m:
            n_bits <<= 1
        h = int(round(n_bits / n * np.log(2.0)))
        return cls(n_bits=n_bits, n_hashes=min(max(h, 1), 16))

    @classmethod
    def from_codes(
        cls, codes: np.ndarray, fp_rate: float = 0.01
    ) -> "BloomPrefilter":
        """Build a filter holding every code of an array."""
        codes = np.asarray(codes, dtype=np.uint64)
        filt = cls.for_capacity(codes.size, fp_rate=fp_rate)
        filt.add(codes)
        return filt

    # -- hashing -------------------------------------------------------
    def _bit_positions(self, codes: np.ndarray) -> np.ndarray:
        """``(n, n_hashes)`` bit indices via double hashing."""
        h1 = _splitmix64(codes)
        h2 = _splitmix64(h1) | np.uint64(1)  # odd => full-period stride
        steps = np.arange(self.n_hashes, dtype=np.uint64)
        return (h1[:, None] + h2[:, None] * steps[None, :]) & self._mask

    # -- operations ----------------------------------------------------
    def add(self, codes: np.ndarray) -> None:
        """Insert an array of codes (vectorized)."""
        codes = np.asarray(codes, dtype=np.uint64).ravel()
        if codes.size == 0:
            return
        pos = self._bit_positions(codes).ravel()
        words = (pos >> np.uint64(6)).astype(np.int64)
        bits = np.uint64(1) << (pos & np.uint64(63))
        np.bitwise_or.at(self._words, words, bits)
        self.n_added += codes.size

    def maybe_contains(self, codes: np.ndarray) -> np.ndarray:
        """Boolean mask: False = definitely absent, True = maybe present."""
        codes = np.asarray(codes, dtype=np.uint64)
        flat = codes.ravel()
        if flat.size == 0:
            return np.zeros(codes.shape, dtype=bool)
        pos = self._bit_positions(flat)
        words = (pos >> np.uint64(6)).astype(np.int64)
        bits = (self._words[words] >> (pos & np.uint64(63))) & np.uint64(1)
        return (bits != 0).all(axis=1).reshape(codes.shape)

    # -- introspection -------------------------------------------------
    @property
    def nbytes(self) -> int:
        return int(self._words.nbytes)

    def fill_fraction(self) -> float:
        """Fraction of bits set (load factor)."""
        if hasattr(np, "bitwise_count"):
            set_bits = int(np.bitwise_count(self._words).sum())
        else:  # numpy < 2.0
            set_bits = sum(int(w).bit_count() for w in self._words.tolist())
        return set_bits / self.n_bits

    def expected_fp_rate(self) -> float:
        """Theoretical false-positive rate at the current load:
        ``fill^h`` with ``fill`` the fraction of set bits."""
        return float(self.fill_fraction() ** self.n_hashes)
