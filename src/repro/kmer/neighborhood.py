"""Hamming-ball enumeration over packed k-mer codes.

``complete_neighbors`` enumerates the complete d-neighborhood ``N^dc``
of a k-mer (every code within Hamming distance d, present in the data
or not); the batch variants produce the distance-1 ball of *many*
codes at once as one 2-D array, which is how the Hamming graph and the
probing neighbor index stay vectorized.

Every function here takes ``include_self`` with the **same default,
False**: the neighborhood excludes the code itself unless asked.
(Historically ``complete_neighbors``/``neighborhood_size`` defaulted
to True while the d1 helpers defaulted to False — an off-by-one-ball
trap for batched kernels that mix them; the defaults were unified and
every call site audited.)
"""

from __future__ import annotations

from itertools import combinations

import numpy as np


def neighbors_d1(code: int, k: int, include_self: bool = False) -> np.ndarray:
    """All ``3k`` codes at Hamming distance exactly 1 (plus self if asked)."""
    return neighbors_d1_batch(
        np.array([code], dtype=np.uint64), k, include_self=include_self
    )[0]


def neighbors_d1_batch(
    codes: np.ndarray, k: int, include_self: bool = False
) -> np.ndarray:
    """Distance-1 balls of many codes: ``(n, 3k [+1])`` array.

    For every position we XOR the 2-bit group with the three non-zero
    patterns — three vectorized passes per position, no Python loop
    over codes.
    """
    codes = np.asarray(codes, dtype=np.uint64).ravel()
    n = codes.size
    width = 3 * k + (1 if include_self else 0)
    out = np.empty((n, width), dtype=np.uint64)
    col = 0
    for pos in range(k):
        shift = np.uint64(2 * (k - 1 - pos))
        for delta in (1, 2, 3):
            out[:, col] = codes ^ (np.uint64(delta) << shift)
            col += 1
    if include_self:
        out[:, col] = codes
    return out


def complete_neighbors(
    code: int, k: int, d: int, include_self: bool = False
) -> np.ndarray:
    """The complete d-neighborhood ``N^dc`` of one code.

    Enumerates every choice of ``<= d`` positions and every non-identity
    substitution pattern at those positions.  Size is
    ``sum_{e<=d} C(k,e) 3^e``.
    """
    if d < 0:
        raise ValueError("d must be >= 0")
    code = np.uint64(code)
    results: list[np.ndarray] = []
    if include_self:
        results.append(np.array([code], dtype=np.uint64))
    for e in range(1, d + 1):
        for positions in combinations(range(k), e):
            shifts = [np.uint64(2 * (k - 1 - p)) for p in positions]
            # All 3^e combinations of non-zero XOR patterns.
            patterns = np.zeros(1, dtype=np.uint64)
            for s in shifts:
                deltas = (np.arange(1, 4, dtype=np.uint64) << s)[None, :]
                patterns = (patterns[:, None] | deltas).ravel()
            results.append(code ^ patterns)
    if not results:  # d == 0 without self: the empty neighborhood
        return np.empty(0, dtype=np.uint64)
    return np.concatenate(results)


def neighborhood_size(k: int, d: int, include_self: bool = False) -> int:
    """``|N^dc|`` — closed-form size of the complete d-neighborhood."""
    from math import comb

    total = 1 if include_self else 0
    for e in range(1, d + 1):
        total += comb(k, e) * 3**e
    return total
