"""Masked-replica index for d-neighborhood retrieval (Sec. 2.3).

Reptile's space/time trade-off for finding all spectrum k-mers within
Hamming distance ``d`` of a query: replicate the sorted spectrum
``C(c, d)`` times, each replica sorted after *masking out* a different
choice of ``d`` of ``c`` position-chunks.  Any two k-mers differing in
at most ``d`` positions agree exactly under at least one mask (their
differing positions fall into at most ``d`` chunks, all of which some
replica masks away), so a binary-search range scan per replica finds
every true neighbor; a final Hamming filter discards spurious hits.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from ..seq.distance import kmer_hamming


def _chunk_positions(k: int, c: int) -> list[list[int]]:
    """Split positions ``0..k-1`` into ``c`` nearly-even chunks."""
    bounds = np.linspace(0, k, c + 1).astype(int)
    return [list(range(bounds[i], bounds[i + 1])) for i in range(c)]


def _mask_for_positions(k: int, positions: list[int]) -> int:
    """uint64 mask that *keeps* all 2-bit groups except ``positions``."""
    mask = (1 << (2 * k)) - 1
    for p in positions:
        mask &= ~(3 << (2 * (k - 1 - p)))
    return mask


class MaskedKmerIndex:
    """Exact d-neighborhood queries against a fixed sorted k-mer set."""

    def __init__(self, kmers: np.ndarray, k: int, d: int, c: int | None = None):
        self.k = int(k)
        self.d = int(d)
        if c is None:
            # A small default: enough chunks that each masked chunk is
            # a few bases wide, keeping per-replica hit lists short.
            c = min(k, max(d + 1, k // 3))
        if not (d < c <= k):
            raise ValueError("need d < c <= k")
        self.c = int(c)
        self.kmers = np.asarray(kmers, dtype=np.uint64)
        if self.kmers.size > 1 and not (self.kmers[:-1] <= self.kmers[1:]).all():
            raise ValueError("kmers must be sorted")

        chunks = _chunk_positions(self.k, self.c)
        self._masks: list[np.uint64] = []
        self._sorted_masked: list[np.ndarray] = []
        self._orders: list[np.ndarray] = []
        for chosen in combinations(range(self.c), self.d):
            positions = [p for ci in chosen for p in chunks[ci]]
            mask = np.uint64(_mask_for_positions(self.k, positions))
            masked = self.kmers & mask
            order = np.argsort(masked, kind="stable")
            self._masks.append(mask)
            self._sorted_masked.append(masked[order])
            self._orders.append(order)

    @property
    def n_replicas(self) -> int:
        return len(self._masks)

    def memory_bytes(self) -> int:
        """Approximate memory of the replicated structures."""
        return sum(a.nbytes for a in self._sorted_masked) + sum(
            a.nbytes for a in self._orders
        )

    def neighbors(self, code: int, include_self: bool = False) -> np.ndarray:
        """All indexed k-mers within Hamming distance ``d`` of ``code``.

        Returns the matching codes (sorted, deduplicated).
        """
        code_u = np.uint64(code)
        hits: list[np.ndarray] = []
        for mask, sorted_masked, order in zip(
            self._masks, self._sorted_masked, self._orders
        ):
            key = code_u & mask
            lo = int(np.searchsorted(sorted_masked, key, side="left"))
            hi = int(np.searchsorted(sorted_masked, key, side="right"))
            if hi > lo:
                hits.append(self.kmers[order[lo:hi]])
        if not hits:
            return np.empty(0, dtype=np.uint64)
        cand = np.unique(np.concatenate(hits))
        dist = kmer_hamming(cand, np.full(cand.shape, code_u, dtype=np.uint64))
        keep = dist <= self.d
        if not include_self:
            keep &= cand != code_u
        return cand[keep]
