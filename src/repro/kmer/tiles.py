"""Tiles: l-overlap concatenations of two k-mers (Definition 2.1).

A tile ``t = alpha1 ||_l alpha2`` is a contiguous read substring of
length ``2k - l``, so tile counting is k-mer counting at a longer
width.  For every tile Reptile records two multiplicities (Sec. 2.3):

- ``Oc`` — occurrences in R (both strands);
- ``Og`` — occurrences where *every* base has quality >= Qc, the
  better estimate of error-free support.

``2k - l`` must stay <= 31 so a tile packs into one ``uint64``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..io.readset import ReadSet
from ..seq.encoding import (
    MAX_K,
    kmer_codes_from_reads,
    kmer_mask,
    revcomp_kmer_codes,
    valid_kmer_mask,
)
from .prefilter import MIN_PREFILTER_BATCH, BloomPrefilter


def compose_tile(a: int, b: int, k: int, overlap: int) -> int:
    """Pack two k-mer codes into a tile code; requires that the last
    ``overlap`` bases of ``a`` equal the first ``overlap`` of ``b``."""
    if not 0 <= overlap < k:
        raise ValueError("overlap must be in [0, k)")
    if overlap:
        a_suffix = int(a) & ((1 << (2 * overlap)) - 1)
        b_prefix = int(b) >> (2 * (k - overlap))
        if a_suffix != b_prefix:
            raise ValueError("kmers do not agree on the overlap region")
    return (int(a) << (2 * (k - overlap))) | (
        int(b) & ((1 << (2 * (k - overlap))) - 1)
    )


def split_tile(tile: int, k: int, overlap: int) -> tuple[int, int]:
    """Recover the two constituent k-mer codes of a tile code."""
    tlen = 2 * k - overlap
    a = int(tile) >> (2 * (tlen - k))
    b = int(tile) & kmer_mask(k)
    return a, b


def compose_tiles_batch(
    a: np.ndarray, b: np.ndarray, k: int, overlap: int
) -> np.ndarray:
    """Vectorized :func:`compose_tile` (overlap agreement not checked)."""
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    shift = np.uint64(2 * (k - overlap))
    low_mask = np.uint64((1 << (2 * (k - overlap))) - 1)
    return (a << shift) | (b & low_mask)


@dataclass
class TileTable:
    """Sorted tile codes with raw (Oc) and high-quality (Og) counts.

    Like :class:`~repro.kmer.spectrum.KmerSpectrum`, an optional Bloom
    prefilter can front the sorted-array lookup: rejected codes are
    answered ``(0, 0)`` without the binary search, and zero false
    negatives mean attaching one never changes any answer.
    """

    k: int
    overlap: int
    tiles: np.ndarray
    oc: np.ndarray
    og: np.ndarray
    #: Optional Bloom prefilter over ``tiles`` (never affects results).
    prefilter: BloomPrefilter | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def tile_length(self) -> int:
        return 2 * self.k - self.overlap

    @property
    def n_tiles(self) -> int:
        return self.tiles.size

    def __len__(self) -> int:
        return self.n_tiles

    def with_prefilter(self, fp_rate: float = 0.01) -> "TileTable":
        """Copy of this table (sharing its arrays) with a Bloom
        prefilter built over its tile codes; returns ``self`` if one is
        already attached."""
        if self.prefilter is not None:
            return self
        return replace(
            self, prefilter=BloomPrefilter.from_codes(self.tiles, fp_rate)
        )

    def lookup(self, codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized ``(Oc, Og)`` for an array of tile codes (0 absent)."""
        codes = np.asarray(codes, dtype=np.uint64)
        if self.tiles.size == 0:
            # Guard before any indexing: an empty table (e.g. every
            # read shorter than the tile length) must answer 0, not
            # IndexError on tiles[idx_c].
            zeros = np.zeros(codes.shape, dtype=np.int64)
            return zeros, zeros.copy()
        if self.prefilter is not None and codes.size >= MIN_PREFILTER_BATCH:
            maybe = self.prefilter.maybe_contains(codes)
            oc = np.zeros(codes.shape, dtype=np.int64)
            og = np.zeros(codes.shape, dtype=np.int64)
            if np.any(maybe):
                sub = codes[maybe]
                idx = np.searchsorted(self.tiles, sub)
                idx_c = np.minimum(idx, self.tiles.size - 1)
                found = self.tiles[idx_c] == sub
                oc[maybe] = np.where(found, self.oc[idx_c], 0)
                og[maybe] = np.where(found, self.og[idx_c], 0)
            return oc, og
        idx = np.searchsorted(self.tiles, codes)
        idx_c = np.minimum(idx, self.tiles.size - 1)
        found = self.tiles[idx_c] == codes
        oc = np.where(found, self.oc[idx_c], 0)
        og = np.where(found, self.og[idx_c], 0)
        return oc.astype(np.int64), og.astype(np.int64)

    def og_scalar(self, code: int) -> int:
        _, og = self.lookup(np.array([code], dtype=np.uint64))
        return int(og[0])

    def as_dict(self) -> dict[int, tuple[int, int]]:
        """Plain dict ``tile -> (Oc, Og)`` for hot scalar lookups."""
        return {
            int(t): (int(c), int(g))
            for t, c, g in zip(
                self.tiles.tolist(), self.oc.tolist(), self.og.tolist()
            )
        }

    def og_quantile_threshold(self, fraction: float) -> int:
        """Smallest count C such that at most ``fraction`` of tiles have
        Og > C — Reptile's data-driven Cg/Cm selection (Sec. 2.3)."""
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")
        return int(np.quantile(self.og, 1.0 - fraction))


def tile_og_rows(
    block: np.ndarray, table: TileTable
) -> tuple[np.ndarray, np.ndarray]:
    """Batched per-window tile codes and Og counts for a code block.

    ``block`` is an ``(n, L)`` matrix of 2-bit base codes (values >= 4
    mark ambiguous bases).  Returns ``(tile_codes, og)``, both of shape
    ``(n, L - tile_length + 1)``: every window position of every row is
    packed and looked up in one vectorized pass.  Windows touching an
    ambiguous base get ``og = -1`` (their tile code is meaningless and
    must not be consulted).

    This is the chunk-level kernel behind the batched tiling walk: the
    scalar path packs and looks up one tile at a time inside the
    per-read Python loop; this computes the same numbers for a whole
    chunk up front.
    """
    tlen = table.tile_length
    block = np.asarray(block)
    n, width = block.shape
    if width - tlen + 1 <= 0:
        return (
            np.empty((n, 0), dtype=np.uint64),
            np.empty((n, 0), dtype=np.int64),
        )
    valid = valid_kmer_mask(block, tlen)
    safe = np.where(block < 4, block, 0)
    codes = kmer_codes_from_reads(safe, tlen)
    _, og = table.lookup(codes)
    og = np.where(valid, og, -1)
    return codes, og


def tile_table_from_reads(
    reads: ReadSet,
    k: int,
    overlap: int = 0,
    quality_cutoff: int = 0,
    both_strands: bool = True,
) -> TileTable:
    """Count all tiles of a read set.

    When the read set has no quality scores, ``Og = Oc`` (the paper's
    fallback for score-less data).
    """
    tlen = 2 * k - overlap
    if not 0 <= overlap < k:
        raise ValueError("overlap must be in [0, k)")
    if tlen > MAX_K:
        raise ValueError(f"tile length {tlen} exceeds packing limit {MAX_K}")

    all_codes: list[np.ndarray] = []
    all_hq: list[np.ndarray] = []
    lengths = reads.lengths
    for ln in np.unique(lengths):
        if ln < tlen:
            continue
        rows = np.flatnonzero(lengths == ln)
        block = reads.codes[rows, :ln]
        valid = valid_kmer_mask(block, tlen)
        safe = np.where(block < 4, block, 0)
        codes = kmer_codes_from_reads(safe, tlen)
        if reads.quals is not None and quality_cutoff > 0:
            lowq = (reads.quals[rows, :ln] < quality_cutoff).astype(np.int32)
            csum = np.zeros((rows.size, ln + 1), dtype=np.int32)
            np.cumsum(lowq, axis=1, out=csum[:, 1:])
            hq = (csum[:, tlen:] - csum[:, :-tlen]) == 0
        else:
            hq = np.ones_like(valid)
        codes = codes[valid]
        hq = hq[valid]
        all_codes.append(codes)
        all_hq.append(hq)
        if both_strands:
            all_codes.append(revcomp_kmer_codes(codes, tlen))
            all_hq.append(hq)

    if all_codes:
        flat = np.concatenate(all_codes)
        flat_hq = np.concatenate(all_hq)
    else:
        flat = np.empty(0, dtype=np.uint64)
        flat_hq = np.empty(0, dtype=bool)

    tiles, inverse, counts = np.unique(
        flat, return_inverse=True, return_counts=True
    )
    og = np.zeros(tiles.size, dtype=np.int64)
    np.add.at(og, inverse[flat_hq], 1)
    return TileTable(
        k=k, overlap=overlap, tiles=tiles, oc=counts.astype(np.int64), og=og
    )
