"""k-spectrum: the multiset of k-mers occurring in a read set or genome.

Stored as a sorted unique ``uint64`` code array plus counts, so
membership and count queries are vectorized ``np.searchsorted`` calls
— the memory-bounded representation Reptile relies on (Sec. 2.2):
``|R^k| = O(min(4^k, n(L-k+1)))`` regardless of input size.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..io.readset import ReadSet
from ..seq.encoding import (
    check_k,
    kmer_codes_from_reads,
    kmer_codes_from_sequence,
    revcomp_kmer_codes,
    valid_kmer_mask,
)
from .prefilter import MIN_PREFILTER_BATCH, BloomPrefilter


@dataclass
class KmerSpectrum:
    """Sorted unique k-mer codes with occurrence counts.

    An optional :class:`~repro.kmer.prefilter.BloomPrefilter` fronts
    the sorted-array lookups: codes the filter rejects are answered
    absent in O(1) without the binary search.  Because the filter has
    zero false negatives, attaching one never changes any answer —
    it is a pure fast path.
    """

    k: int
    kmers: np.ndarray  # sorted uint64
    counts: np.ndarray  # int64, aligned with kmers
    #: Optional Bloom prefilter over ``kmers`` (never affects results).
    prefilter: BloomPrefilter | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.kmers = np.asarray(self.kmers, dtype=np.uint64)
        self.counts = np.asarray(self.counts, dtype=np.int64)
        if self.kmers.shape != self.counts.shape:
            raise ValueError("kmers/counts shape mismatch")

    def with_prefilter(self, fp_rate: float = 0.01) -> "KmerSpectrum":
        """Copy of this spectrum (sharing its arrays) with a Bloom
        prefilter built over its k-mers; returns ``self`` if one is
        already attached."""
        if self.prefilter is not None:
            return self
        return replace(
            self, prefilter=BloomPrefilter.from_codes(self.kmers, fp_rate)
        )

    @property
    def n_kmers(self) -> int:
        return self.kmers.size

    def __len__(self) -> int:
        return self.n_kmers

    def __contains__(self, code: int) -> bool:
        # Explicit empty guard: membership in an empty spectrum is a
        # legitimate query (e.g. a chunk whose reads were all < k) and
        # must answer False, never raise.
        if self.kmers.size == 0:
            return False
        i = int(np.searchsorted(self.kmers, np.uint64(code)))
        return i < self.kmers.size and self.kmers[i] == np.uint64(code)

    def index_of(self, codes: np.ndarray) -> np.ndarray:
        """Index of each code in the spectrum, or -1 if absent."""
        codes = np.asarray(codes, dtype=np.uint64)
        if self.kmers.size == 0:
            return np.full(codes.shape, -1, dtype=np.int64)
        if self.prefilter is not None and codes.size >= MIN_PREFILTER_BATCH:
            # Zero false negatives => codes the filter rejects are
            # certainly absent; only the survivors hit the binary
            # search.  Result is exactly the unfiltered answer.
            # (Tiny batches skip the filter — hashing costs more than
            # the binary search it would save.)
            maybe = self.prefilter.maybe_contains(codes)
            out = np.full(codes.shape, -1, dtype=np.int64)
            if np.any(maybe):
                sub = codes[maybe]
                idx = np.searchsorted(self.kmers, sub)
                idx_c = np.minimum(idx, self.kmers.size - 1)
                found = self.kmers[idx_c] == sub
                out[maybe] = np.where(found, idx_c, -1)
            return out
        idx = np.searchsorted(self.kmers, codes)
        idx_clipped = np.minimum(idx, self.kmers.size - 1)
        found = self.kmers[idx_clipped] == codes
        return np.where(found, idx_clipped, -1).astype(np.int64)

    def contains(self, codes: np.ndarray) -> np.ndarray:
        """Vectorized membership test."""
        return self.index_of(codes) >= 0

    def count(self, codes: np.ndarray) -> np.ndarray:
        """Occurrence count of each code (0 if absent)."""
        idx = self.index_of(codes)
        out = np.zeros(idx.shape, dtype=np.int64)
        hit = idx >= 0
        out[hit] = self.counts[idx[hit]]
        return out

    def count_scalar(self, code: int) -> int:
        return int(self.count(np.array([code], dtype=np.uint64))[0])


def read_kmer_codes(
    reads: ReadSet, k: int, both_strands: bool = True
) -> np.ndarray:
    """Flat array of all valid (N-free, in-bounds) k-mer codes in a
    read set, optionally including each k-mer's reverse complement.

    ``k`` is validated up front so an out-of-range value raises even
    when every read is shorter than ``k`` (previously that combination
    silently returned an empty array); reads shorter than a *valid*
    ``k`` simply contribute nothing.
    """
    check_k(k)
    pieces: list[np.ndarray] = []
    lengths = reads.lengths
    for ln in np.unique(lengths):
        if ln < k:
            continue
        rows = np.flatnonzero(lengths == ln)
        block = reads.codes[rows, :ln]
        valid = valid_kmer_mask(block, k)
        safe = np.where(block < 4, block, 0)
        codes = kmer_codes_from_reads(safe, k)[valid]
        pieces.append(codes)
        if both_strands:
            pieces.append(revcomp_kmer_codes(codes, k))
    if not pieces:
        return np.empty(0, dtype=np.uint64)
    return np.concatenate(pieces)


def spectrum_from_reads(
    reads: ReadSet, k: int, both_strands: bool = True
) -> KmerSpectrum:
    """Build the k-spectrum of a read set (forward + reverse strands by
    default, as Reptile does: 'R^k is already generated using both
    strands', Sec. 2.3)."""
    codes = read_kmer_codes(reads, k, both_strands=both_strands)
    kmers, counts = np.unique(codes, return_counts=True)
    return KmerSpectrum(k=k, kmers=kmers, counts=counts.astype(np.int64))


def spectrum_from_sequence(
    seq_codes: np.ndarray, k: int, both_strands: bool = False
) -> KmerSpectrum:
    """k-spectrum of one long sequence (e.g. the reference genome)."""
    check_k(k)
    codes = kmer_codes_from_sequence(
        np.where(np.asarray(seq_codes) < 4, seq_codes, 0), k
    )
    # Windows touching an ambiguous genome base are dropped.
    valid = valid_kmer_mask(np.asarray(seq_codes)[None, :], k)[0]
    codes = codes[valid]
    if both_strands:
        codes = np.concatenate([codes, revcomp_kmer_codes(codes, k)])
    kmers, counts = np.unique(codes, return_counts=True)
    return KmerSpectrum(k=k, kmers=kmers, counts=counts.astype(np.int64))
