"""Disk-backed external k-mer counting (KMC-style partition & merge).

When even the *count tables* outgrow RAM, counting has to spill.  The
scheme here follows the disk-based counters RECKONER builds on (KMC):

1. **Partition** — every code is assigned to one of ``2^partition_bits``
   buckets by its high bits, so bucket order equals global sorted
   order and buckets can be finalized independently.
2. **Spill runs** — added codes accumulate in an in-memory buffer;
   when the buffer exceeds the memory budget it is sorted, locally
   aggregated, split at the bucket boundaries (one ``searchsorted``,
   the buffer is already sorted), and appended to per-bucket temp
   files as sorted runs.
3. **k-way merge** — finalization merges each bucket's sorted runs
   with a block-buffered k-way merge: every run contributes a bounded
   block, the merge frontier advances to the smallest "last loaded
   element" among unfinished runs, and everything at or below that
   bound is aggregated with one ``np.unique``.  Peak memory is
   O(runs × block), never O(bucket).

Counts are ``n_values`` parallel int64 columns per code — one column
for a k-spectrum, two (Oc, Og) for tile tables — so both structures
share one counter.  The output is bitwise identical to a monolithic
``np.unique`` count of the same stream.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..mapreduce import faults

#: Smallest accepted memory budget: tiny budgets still need one block
#: per run resident during merges.
MIN_MEMORY_BYTES = 4096

_CODE_ITEM = 8  # uint64
_VALUE_ITEM = 8  # int64


@dataclass
class _Run:
    """One sorted, locally-aggregated run inside a bucket file:
    ``n`` codes at ``code_offset`` followed by ``n_values`` contiguous
    int64 columns at ``value_offset``."""

    code_offset: int
    value_offset: int
    n: int


class _RunReader:
    """Block cursor over one spilled run (codes + value columns)."""

    def __init__(self, path: Path, run: _Run, n_values: int) -> None:
        self._path = path
        self._run = run
        self._n_values = n_values
        self._pos = 0
        self.codes = np.empty(0, dtype=np.uint64)
        self.values = np.empty((0, n_values), dtype=np.int64)

    @property
    def exhausted_disk(self) -> bool:
        return self._pos >= self._run.n

    @property
    def done(self) -> bool:
        return self.exhausted_disk and self.codes.size == 0

    def refill(self, block_items: int) -> None:
        """Load up to ``block_items`` more items into the buffer."""
        if self.exhausted_disk:
            return
        take = min(block_items, self._run.n - self._pos)
        with open(self._path, "rb") as fh:
            fh.seek(self._run.code_offset + self._pos * _CODE_ITEM)
            codes = np.frombuffer(
                fh.read(take * _CODE_ITEM), dtype=np.uint64
            )
            cols = []
            for c in range(self._n_values):
                fh.seek(
                    self._run.value_offset
                    + (c * self._run.n + self._pos) * _VALUE_ITEM
                )
                cols.append(
                    np.frombuffer(
                        fh.read(take * _VALUE_ITEM), dtype=np.int64
                    )
                )
        self._pos += take
        self.codes = np.concatenate([self.codes, codes])
        self.values = np.concatenate(
            [self.values, np.stack(cols, axis=1)], axis=0
        )

    def take_up_to(self, bound: np.uint64) -> tuple[np.ndarray, np.ndarray]:
        """Remove and return all buffered items with code <= bound."""
        cut = int(np.searchsorted(self.codes, bound, side="right"))
        out = (self.codes[:cut], self.values[:cut])
        self.codes = self.codes[cut:]
        self.values = self.values[cut:]
        return out


def _aggregate(
    codes: np.ndarray, values: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Sort codes and sum the value columns of duplicates."""
    uniq, inverse = np.unique(codes, return_inverse=True)
    summed = np.zeros((uniq.size, values.shape[1]), dtype=np.int64)
    np.add.at(summed, inverse, values)
    return uniq, summed


class ExternalCodeCounter:
    """Bounded-memory ``code -> count columns`` accumulator.

    Parameters
    ----------
    code_bits:
        Significant low bits of the uint64 codes (``2k`` for k-mers,
        ``2·(2k-l)`` for tiles).  Partitioning keys on the *top* bits
        of this width — keying on raw uint64 high bits would put every
        k-mer in bucket 0.
    n_values:
        Count columns carried per code (added values default to 1).
    max_memory_bytes:
        Spill threshold for the add buffer and the budget that sizes
        merge blocks.
    partition_bits:
        log2 of the bucket count (default 4 → 16 buckets).
    """

    def __init__(
        self,
        code_bits: int,
        n_values: int = 1,
        max_memory_bytes: int = 64 << 20,
        partition_bits: int = 4,
        tmp_dir=None,
    ) -> None:
        if not 1 <= code_bits <= 64:
            raise ValueError(f"code_bits must be in [1, 64], got {code_bits}")
        if n_values < 1:
            raise ValueError(f"n_values must be >= 1, got {n_values}")
        if max_memory_bytes < MIN_MEMORY_BYTES:
            raise ValueError(
                f"max_memory_bytes must be >= {MIN_MEMORY_BYTES}, "
                f"got {max_memory_bytes}"
            )
        partition_bits = max(0, min(partition_bits, code_bits - 1))
        self.code_bits = code_bits
        self.n_values = n_values
        self.max_memory_bytes = max_memory_bytes
        self.n_partitions = 1 << partition_bits
        self._shift = np.uint64(code_bits - partition_bits)
        if tmp_dir is not None:
            os.makedirs(tmp_dir, exist_ok=True)
        self._tmp = tempfile.TemporaryDirectory(
            prefix="repro-extcount-", dir=tmp_dir
        )
        self._runs: list[list[_Run]] = [[] for _ in range(self.n_partitions)]
        self._pending_codes: list[np.ndarray] = []
        self._pending_values: list[np.ndarray] = []
        self._pending_bytes = 0
        self.spill_bytes = 0
        self.n_spills = 0
        self.peak_buffer_bytes = 0
        #: Largest single :meth:`add` in bytes — the buffer peak is
        #: bounded by ``max_memory_bytes + max_add_bytes`` regardless
        #: of how many chunks stream through.
        self.max_add_bytes = 0
        self._finalized = False

    def _bucket_path(self, p: int) -> Path:
        return Path(self._tmp.name) / f"bucket{p:04d}.bin"

    # -- adding --------------------------------------------------------
    def add(self, codes: np.ndarray, values: np.ndarray | None = None) -> None:
        """Accumulate ``codes`` with per-code value rows (default 1s)."""
        if self._finalized:
            raise RuntimeError("counter already finalized")
        codes = np.asarray(codes, dtype=np.uint64).ravel()
        if codes.size == 0:
            return
        if values is None:
            values = np.ones((codes.size, self.n_values), dtype=np.int64)
        else:
            values = np.asarray(values, dtype=np.int64)
            if values.ndim == 1:
                values = values[:, None]
            if values.shape != (codes.size, self.n_values):
                raise ValueError(
                    f"values must have shape ({codes.size}, {self.n_values}),"
                    f" got {values.shape}"
                )
        self._pending_codes.append(codes)
        self._pending_values.append(values)
        self._pending_bytes += codes.nbytes + values.nbytes
        self.max_add_bytes = max(
            self.max_add_bytes, codes.nbytes + values.nbytes
        )
        self.peak_buffer_bytes = max(
            self.peak_buffer_bytes, self._pending_bytes
        )
        if self._pending_bytes >= self.max_memory_bytes:
            self._spill()

    def _drain_pending(self) -> tuple[np.ndarray, np.ndarray]:
        codes = np.concatenate(self._pending_codes)
        values = np.concatenate(self._pending_values, axis=0)
        self._pending_codes = []
        self._pending_values = []
        self._pending_bytes = 0
        return _aggregate(codes, values)

    def _spill(self) -> None:
        codes, values = self._drain_pending()
        if codes.size == 0:
            return
        # Chaos-harness hook: scripted ENOSPC on the spill path proves
        # the job-level retry/backoff machinery recovers from a full
        # disk exactly like a crashed worker.
        faults.hit_fault_point("spill.write")
        # The buffer is sorted, so bucket boundaries are one
        # searchsorted over the bucket edges.
        edges = (
            np.arange(1, self.n_partitions, dtype=np.uint64) << self._shift
        )
        bounds = np.concatenate(
            [[0], np.searchsorted(codes, edges), [codes.size]]
        )
        for p in range(self.n_partitions):
            lo, hi = int(bounds[p]), int(bounds[p + 1])
            if lo == hi:
                continue
            part_codes = codes[lo:hi]
            part_values = values[lo:hi]
            path = self._bucket_path(p)
            with open(path, "ab") as fh:
                code_offset = fh.tell()
                fh.write(part_codes.tobytes())
                value_offset = fh.tell()
                # Column-contiguous so the merge cursor can slice one
                # column with a single seek+read.
                fh.write(np.ascontiguousarray(part_values.T).tobytes())
            self._runs[p].append(
                _Run(code_offset, value_offset, part_codes.size)
            )
            self.spill_bytes += part_codes.nbytes + part_values.nbytes
        self.n_spills += 1

    # -- merging -------------------------------------------------------
    def _merge_bucket(
        self, p: int, tail: tuple[np.ndarray, np.ndarray] | None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Block-buffered k-way merge of bucket ``p``'s sorted runs
        (plus the optional still-in-memory tail run)."""
        readers = [
            _RunReader(self._bucket_path(p), run, self.n_values)
            for run in self._runs[p]
        ]
        if tail is not None and tail[0].size:
            mem = _RunReader.__new__(_RunReader)
            mem._run = _Run(0, 0, 0)
            mem._pos = 0
            mem._n_values = self.n_values
            mem.codes, mem.values = tail
            readers.append(mem)
        if not readers:
            return (
                np.empty(0, dtype=np.uint64),
                np.empty((0, self.n_values), dtype=np.int64),
            )
        row_bytes = _CODE_ITEM + self.n_values * _VALUE_ITEM
        block_items = max(
            1024, self.max_memory_bytes // (2 * len(readers) * row_bytes)
        )
        out_codes: list[np.ndarray] = []
        out_values: list[np.ndarray] = []
        while True:
            active = []
            for r in readers:
                if r.codes.size == 0 and not r.exhausted_disk:
                    r.refill(block_items)
                if not r.done:
                    active.append(r)
            if not active:
                break
            # Everything <= bound is fully resident: any unread item of
            # run r exceeds r's buffered maximum, which is >= bound.
            unfinished = [r for r in active if not r.exhausted_disk]
            if unfinished:
                bound = min(np.uint64(r.codes[-1]) for r in unfinished)
            else:
                bound = max(np.uint64(r.codes[-1]) for r in active)
            taken = [r.take_up_to(bound) for r in active]
            codes = np.concatenate([t[0] for t in taken])
            values = np.concatenate([t[1] for t in taken], axis=0)
            if codes.size:
                uniq, summed = _aggregate(codes, values)
                out_codes.append(uniq)
                out_values.append(summed)
        if not out_codes:
            return (
                np.empty(0, dtype=np.uint64),
                np.empty((0, self.n_values), dtype=np.int64),
            )
        return (
            np.concatenate(out_codes),
            np.concatenate(out_values, axis=0),
        )

    def finalize(self) -> tuple[np.ndarray, np.ndarray]:
        """Merge everything into globally sorted unique ``(codes,
        values)``; the counter is unusable (and its temp files gone)
        afterwards."""
        if self._finalized:
            raise RuntimeError("counter already finalized")
        self._finalized = True
        try:
            tail_codes, tail_values = (
                self._drain_pending()
                if self._pending_codes
                else (
                    np.empty(0, dtype=np.uint64),
                    np.empty((0, self.n_values), dtype=np.int64),
                )
            )
            if self.n_spills == 0:
                return tail_codes, tail_values
            edges = (
                np.arange(1, self.n_partitions, dtype=np.uint64)
                << self._shift
            )
            tail_bounds = np.concatenate(
                [[0], np.searchsorted(tail_codes, edges), [tail_codes.size]]
            )
            pieces_c: list[np.ndarray] = []
            pieces_v: list[np.ndarray] = []
            for p in range(self.n_partitions):
                lo, hi = int(tail_bounds[p]), int(tail_bounds[p + 1])
                tail = (tail_codes[lo:hi], tail_values[lo:hi])
                codes, values = self._merge_bucket(p, tail)
                if codes.size:
                    pieces_c.append(codes)
                    pieces_v.append(values)
            if not pieces_c:
                return (
                    np.empty(0, dtype=np.uint64),
                    np.empty((0, self.n_values), dtype=np.int64),
                )
            # Bucket p's codes all precede bucket p+1's (high-bit
            # partitioning), so concatenation is globally sorted.
            return (
                np.concatenate(pieces_c),
                np.concatenate(pieces_v, axis=0),
            )
        finally:
            self._tmp.cleanup()


def external_spectrum_from_chunks(
    chunks,
    k: int,
    max_memory_bytes: int,
    both_strands: bool = True,
    tmp_dir=None,
):
    """Disk-spill k-spectrum over a chunk stream; see
    :class:`repro.kmer.streaming.SpectrumAccumulator`."""
    from .streaming import spectrum_from_chunks

    return spectrum_from_chunks(
        chunks,
        k,
        both_strands=both_strands,
        max_memory_bytes=max_memory_bytes,
        tmp_dir=tmp_dir,
    )


def external_tile_table_from_chunks(
    chunks,
    k: int,
    max_memory_bytes: int,
    overlap: int = 0,
    quality_cutoff: int = 0,
    both_strands: bool = True,
    tmp_dir=None,
):
    """Disk-spill tile table over a chunk stream."""
    from .streaming import tile_table_from_chunks

    return tile_table_from_chunks(
        chunks,
        k,
        overlap=overlap,
        quality_cutoff=quality_cutoff,
        both_strands=both_strands,
        max_memory_bytes=max_memory_bytes,
        tmp_dir=tmp_dir,
    )
