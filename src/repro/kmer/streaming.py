"""Out-of-core spectrum and tile construction (Sec. 2.3, 'Overall
Complexity').

'When the collection of input short reads R does not fit in main
memory, we propose a divide and merge strategy where R is partitioned
into chunks ... for each chunk, we stream through each read and record
the k-spectrum and tile information, merging it with the data from
previous chunks.  Reads need not be stored in memory after they have
been processed.'

Merging two sorted count tables is one ``np.unique`` over their
concatenation with count aggregation, so merges are associative and
order-independent: any merge tree over the same chunks yields the same
sorted arrays, and a corrector built from streamed chunks is
bit-identical to one built monolithically.

The chunk stream is folded with a **balanced merge** (a binary-counter
stack that only merges same-size partials, as external merge sorts
do): each k-mer occurrence participates in O(log C) merges for C
chunks, for O(N log C) total merge work — against the O(N·C) of
re-merging one ever-growing accumulator with every new chunk.  With a
``max_memory_bytes`` budget the accumulators switch to the disk-spill
external counter of :mod:`repro.kmer.external` (KMC/RECKONER-style
partition-and-merge), so the partial tables themselves no longer need
to fit in RAM.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence, TypeVar

import numpy as np

from ..io.readset import ReadSet
from .spectrum import KmerSpectrum, read_kmer_codes
from .tiles import TileTable, tile_table_from_reads

T = TypeVar("T")


def merge_spectra(a: KmerSpectrum, b: KmerSpectrum) -> KmerSpectrum:
    """Sum two k-spectra (counts add; k must match)."""
    if a.k != b.k:
        raise ValueError("cannot merge spectra with different k")
    kmers = np.concatenate([a.kmers, b.kmers])
    counts = np.concatenate([a.counts, b.counts])
    uniq, inverse = np.unique(kmers, return_inverse=True)
    summed = np.zeros(uniq.size, dtype=np.int64)
    np.add.at(summed, inverse, counts)
    return KmerSpectrum(k=a.k, kmers=uniq, counts=summed)


def merge_tile_tables(a: TileTable, b: TileTable) -> TileTable:
    """Sum two tile tables (Oc and Og add)."""
    if (a.k, a.overlap) != (b.k, b.overlap):
        raise ValueError("cannot merge tile tables with different shape")
    tiles = np.concatenate([a.tiles, b.tiles])
    uniq, inverse = np.unique(tiles, return_inverse=True)
    oc = np.zeros(uniq.size, dtype=np.int64)
    og = np.zeros(uniq.size, dtype=np.int64)
    np.add.at(oc, inverse, np.concatenate([a.oc, b.oc]))
    np.add.at(og, inverse, np.concatenate([a.og, b.og]))
    return TileTable(k=a.k, overlap=a.overlap, tiles=uniq, oc=oc, og=og)


def balanced_merge(
    parts: Iterable[T], merge_two: Callable[[T, T], T]
) -> T | None:
    """Fold ``parts`` with ``merge_two`` using a binary-counter stack.

    Slot ``i`` of the stack holds a partial built from ``2^i`` inputs;
    a new part cascades carries exactly like binary increment, so only
    same-size partials are ever merged.  Each input participates in
    O(log C) merges (total work O(N log C) for size-proportional merge
    cost) instead of the O(N·C) of ``reduce(merge_two, parts)``.
    Returns ``None`` for an empty iterable.  The result equals any
    other merge order whenever ``merge_two`` is associative.
    """
    stack: list[tuple[int, T]] = []  # (level, partial), levels strictly
    for part in parts:  # decreasing from bottom to top
        level, cur = 0, part
        while stack and stack[-1][0] == level:
            _, prev = stack.pop()
            cur = merge_two(prev, cur)
            level += 1
        stack.append((level, cur))
    if not stack:
        return None
    acc = stack.pop()[1]
    while stack:
        acc = merge_two(stack.pop()[1], acc)
    return acc


class _BalancedStack:
    """Incremental :func:`balanced_merge` with byte-size accounting."""

    def __init__(self, merge_two: Callable, nbytes_of: Callable) -> None:
        self._merge_two = merge_two
        self._nbytes_of = nbytes_of
        self._stack: list[tuple[int, object]] = []
        self.peak_bytes = 0

    def _note_peak(self) -> None:
        held = sum(self._nbytes_of(p) for _, p in self._stack)
        self.peak_bytes = max(self.peak_bytes, held)

    def push(self, part) -> None:
        level, cur = 0, part
        while self._stack and self._stack[-1][0] == level:
            _, prev = self._stack.pop()
            cur = self._merge_two(prev, cur)
            level += 1
        self._stack.append((level, cur))
        self._note_peak()

    def result(self):
        if not self._stack:
            return None
        acc = self._stack.pop()[1]
        while self._stack:
            acc = self._merge_two(self._stack.pop()[1], acc)
        self._stack = []
        return acc


class SpectrumAccumulator:
    """Streaming k-spectrum builder: feed read chunks, finalize once.

    In-memory partials are folded with the balanced merge; with a
    ``max_memory_bytes`` budget the per-chunk tables are routed to a
    disk-spill :class:`~repro.kmer.external.ExternalCodeCounter`
    instead, bounding resident table memory.  Either way the result is
    bitwise identical to :func:`spectrum_from_reads` on the
    concatenated chunks.
    """

    def __init__(
        self,
        k: int,
        both_strands: bool = True,
        max_memory_bytes: int | None = None,
        tmp_dir=None,
        prefilter_fp_rate: float | None = None,
    ) -> None:
        from ..seq.encoding import check_k

        check_k(k)
        self.k = k
        self.both_strands = both_strands
        self.prefilter_fp_rate = prefilter_fp_rate
        self._counter = None
        self._stack = None
        if max_memory_bytes is not None:
            from .external import ExternalCodeCounter

            self._counter = ExternalCodeCounter(
                code_bits=2 * k,
                n_values=1,
                max_memory_bytes=max_memory_bytes,
                tmp_dir=tmp_dir,
            )
        else:
            self._stack = _BalancedStack(
                merge_spectra,
                lambda s: s.kmers.nbytes + s.counts.nbytes,
            )

    @property
    def spill_bytes(self) -> int:
        return 0 if self._counter is None else self._counter.spill_bytes

    @property
    def peak_bytes(self) -> int:
        if self._counter is not None:
            return self._counter.peak_buffer_bytes
        return self._stack.peak_bytes

    @property
    def max_add_bytes(self) -> int:
        """Largest single chunk table fed in (external mode only)."""
        return 0 if self._counter is None else self._counter.max_add_bytes

    def add_chunk(self, chunk: ReadSet) -> None:
        codes = read_kmer_codes(chunk, self.k, both_strands=self.both_strands)
        kmers, counts = np.unique(codes, return_counts=True)
        if self._counter is not None:
            self._counter.add(kmers, counts.astype(np.int64))
        else:
            self._stack.push(
                KmerSpectrum(
                    k=self.k, kmers=kmers, counts=counts.astype(np.int64)
                )
            )

    def finalize(self) -> KmerSpectrum:
        if self._counter is not None:
            codes, values = self._counter.finalize()
            out = KmerSpectrum(k=self.k, kmers=codes, counts=values[:, 0])
        else:
            acc = self._stack.result()
            out = acc if acc is not None else KmerSpectrum(
                k=self.k,
                kmers=np.empty(0, dtype=np.uint64),
                counts=np.empty(0, dtype=np.int64),
            )
        if self.prefilter_fp_rate is not None:
            # The stream already paid for the accumulation pass; the
            # prefilter is one extra vectorized hash over the final
            # unique codes, so ``--stream`` gets it essentially free.
            out = out.with_prefilter(self.prefilter_fp_rate)
        return out


class TileAccumulator:
    """Streaming tile-table builder (Oc + Og); mirror of
    :class:`SpectrumAccumulator` for the two-count tile tables."""

    def __init__(
        self,
        k: int,
        overlap: int = 0,
        quality_cutoff: int = 0,
        both_strands: bool = True,
        max_memory_bytes: int | None = None,
        tmp_dir=None,
        prefilter_fp_rate: float | None = None,
    ) -> None:
        if not 0 <= overlap < k:
            raise ValueError("overlap must be in [0, k)")
        self.k = k
        self.overlap = overlap
        self.quality_cutoff = quality_cutoff
        self.both_strands = both_strands
        self.prefilter_fp_rate = prefilter_fp_rate
        self._counter = None
        self._stack = None
        if max_memory_bytes is not None:
            from .external import ExternalCodeCounter

            self._counter = ExternalCodeCounter(
                code_bits=2 * (2 * k - overlap),
                n_values=2,
                max_memory_bytes=max_memory_bytes,
                tmp_dir=tmp_dir,
            )
        else:
            self._stack = _BalancedStack(
                merge_tile_tables,
                lambda t: t.tiles.nbytes + t.oc.nbytes + t.og.nbytes,
            )

    @property
    def spill_bytes(self) -> int:
        return 0 if self._counter is None else self._counter.spill_bytes

    @property
    def peak_bytes(self) -> int:
        if self._counter is not None:
            return self._counter.peak_buffer_bytes
        return self._stack.peak_bytes

    @property
    def max_add_bytes(self) -> int:
        """Largest single chunk table fed in (external mode only)."""
        return 0 if self._counter is None else self._counter.max_add_bytes

    def add_chunk(self, chunk: ReadSet) -> None:
        part = tile_table_from_reads(
            chunk,
            k=self.k,
            overlap=self.overlap,
            quality_cutoff=self.quality_cutoff,
            both_strands=self.both_strands,
        )
        if self._counter is not None:
            self._counter.add(
                part.tiles, np.stack([part.oc, part.og], axis=1)
            )
        else:
            self._stack.push(part)

    def finalize(self) -> TileTable:
        if self._counter is not None:
            codes, values = self._counter.finalize()
            out = TileTable(
                k=self.k,
                overlap=self.overlap,
                tiles=codes,
                oc=values[:, 0],
                og=values[:, 1],
            )
        else:
            acc = self._stack.result()
            if acc is None:
                empty = np.empty(0, dtype=np.uint64)
                zeros = np.empty(0, dtype=np.int64)
                out = TileTable(
                    k=self.k, overlap=self.overlap,
                    tiles=empty, oc=zeros, og=zeros,
                )
            else:
                out = acc
        if self.prefilter_fp_rate is not None:
            out = out.with_prefilter(self.prefilter_fp_rate)
        return out


def build_from_chunks(chunks: Iterable[ReadSet], accumulators: Sequence):
    """Feed one pass over ``chunks`` to several accumulators at once.

    This is how phase 1 builds the spectrum *and* the tile table from
    a single traversal of a stream that cannot be rewound cheaply —
    the previous implementation ``itertools.tee``'d the stream, which
    silently buffered every chunk and defeated out-of-core operation.
    Returns the list of finalized structures, in accumulator order.
    """
    for chunk in chunks:
        for acc in accumulators:
            acc.add_chunk(chunk)
    return [acc.finalize() for acc in accumulators]


def spectrum_from_chunks(
    chunks: Iterable[ReadSet],
    k: int,
    both_strands: bool = True,
    max_memory_bytes: int | None = None,
    tmp_dir=None,
) -> KmerSpectrum:
    """k-spectrum over a stream of read chunks (constant read memory,
    O(N log C) merge work; disk-spill counting under a memory budget)."""
    acc = SpectrumAccumulator(
        k,
        both_strands=both_strands,
        max_memory_bytes=max_memory_bytes,
        tmp_dir=tmp_dir,
    )
    return build_from_chunks(chunks, [acc])[0]


def tile_table_from_chunks(
    chunks: Iterable[ReadSet],
    k: int,
    overlap: int = 0,
    quality_cutoff: int = 0,
    both_strands: bool = True,
    max_memory_bytes: int | None = None,
    tmp_dir=None,
) -> TileTable:
    """Tile table over a stream of read chunks."""
    acc = TileAccumulator(
        k,
        overlap=overlap,
        quality_cutoff=quality_cutoff,
        both_strands=both_strands,
        max_memory_bytes=max_memory_bytes,
        tmp_dir=tmp_dir,
    )
    return build_from_chunks(chunks, [acc])[0]


def iter_read_chunks(reads: ReadSet, chunk_size: int) -> Iterator[ReadSet]:
    """Split an in-memory ReadSet into chunks (testing convenience; in
    production the chunks come straight from
    :func:`repro.io.fastq.read_fastq_chunks`)."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    for start in range(0, reads.n_reads, chunk_size):
        idx = np.arange(start, min(start + chunk_size, reads.n_reads))
        yield reads.subset(idx)
