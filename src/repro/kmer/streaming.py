"""Out-of-core spectrum and tile construction (Sec. 2.3, 'Overall
Complexity').

'When the collection of input short reads R does not fit in main
memory, we propose a divide and merge strategy where R is partitioned
into chunks ... for each chunk, we stream through each read and record
the k-spectrum and tile information, merging it with the data from
previous chunks.  Reads need not be stored in memory after they have
been processed.'

Merging two sorted count tables is one ``np.unique`` over their
concatenation with count aggregation — the structures stay sorted
arrays throughout, so the corrector built from streamed chunks is
bit-identical to one built monolithically.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from ..io.readset import ReadSet
from .spectrum import KmerSpectrum, read_kmer_codes
from .tiles import TileTable, tile_table_from_reads


def merge_spectra(a: KmerSpectrum, b: KmerSpectrum) -> KmerSpectrum:
    """Sum two k-spectra (counts add; k must match)."""
    if a.k != b.k:
        raise ValueError("cannot merge spectra with different k")
    kmers = np.concatenate([a.kmers, b.kmers])
    counts = np.concatenate([a.counts, b.counts])
    uniq, inverse = np.unique(kmers, return_inverse=True)
    summed = np.zeros(uniq.size, dtype=np.int64)
    np.add.at(summed, inverse, counts)
    return KmerSpectrum(k=a.k, kmers=uniq, counts=summed)


def merge_tile_tables(a: TileTable, b: TileTable) -> TileTable:
    """Sum two tile tables (Oc and Og add)."""
    if (a.k, a.overlap) != (b.k, b.overlap):
        raise ValueError("cannot merge tile tables with different shape")
    tiles = np.concatenate([a.tiles, b.tiles])
    uniq, inverse = np.unique(tiles, return_inverse=True)
    oc = np.zeros(uniq.size, dtype=np.int64)
    og = np.zeros(uniq.size, dtype=np.int64)
    np.add.at(oc, inverse, np.concatenate([a.oc, b.oc]))
    np.add.at(og, inverse, np.concatenate([a.og, b.og]))
    return TileTable(k=a.k, overlap=a.overlap, tiles=uniq, oc=oc, og=og)


def spectrum_from_chunks(
    chunks: Iterable[ReadSet], k: int, both_strands: bool = True
) -> KmerSpectrum:
    """k-spectrum over a stream of read chunks (constant read memory)."""
    acc: KmerSpectrum | None = None
    for chunk in chunks:
        codes = read_kmer_codes(chunk, k, both_strands=both_strands)
        kmers, counts = np.unique(codes, return_counts=True)
        part = KmerSpectrum(k=k, kmers=kmers, counts=counts.astype(np.int64))
        acc = part if acc is None else merge_spectra(acc, part)
    if acc is None:
        return KmerSpectrum(
            k=k,
            kmers=np.empty(0, dtype=np.uint64),
            counts=np.empty(0, dtype=np.int64),
        )
    return acc


def tile_table_from_chunks(
    chunks: Iterable[ReadSet],
    k: int,
    overlap: int = 0,
    quality_cutoff: int = 0,
    both_strands: bool = True,
) -> TileTable:
    """Tile table over a stream of read chunks."""
    acc: TileTable | None = None
    for chunk in chunks:
        part = tile_table_from_reads(
            chunk,
            k=k,
            overlap=overlap,
            quality_cutoff=quality_cutoff,
            both_strands=both_strands,
        )
        acc = part if acc is None else merge_tile_tables(acc, part)
    if acc is None:
        empty = np.empty(0, dtype=np.uint64)
        zeros = np.empty(0, dtype=np.int64)
        return TileTable(k=k, overlap=overlap, tiles=empty, oc=zeros, og=zeros)
    return acc


def iter_read_chunks(reads: ReadSet, chunk_size: int) -> Iterator[ReadSet]:
    """Split an in-memory ReadSet into chunks (testing convenience; in
    production the chunks would come straight from a FASTQ stream)."""
    for start in range(0, reads.n_reads, chunk_size):
        idx = np.arange(start, min(start + chunk_size, reads.n_reads))
        yield reads.subset(idx)
