"""k-mer machinery: spectra, Hamming neighborhoods, masked-replica
indexes, and tile tables."""

from .masked_index import MaskedKmerIndex
from .neighbor_index import (
    PrecomputedNeighborIndex,
    ProbingNeighborIndex,
    xor_patterns,
)
from .neighborhood import (
    complete_neighbors,
    neighborhood_size,
    neighbors_d1,
    neighbors_d1_batch,
)
from .prefilter import BloomPrefilter
from .external import (
    ExternalCodeCounter,
    external_spectrum_from_chunks,
    external_tile_table_from_chunks,
)
from .streaming import (
    SpectrumAccumulator,
    TileAccumulator,
    balanced_merge,
    build_from_chunks,
    iter_read_chunks,
    merge_spectra,
    merge_tile_tables,
    spectrum_from_chunks,
    tile_table_from_chunks,
)
from .spectrum import (
    KmerSpectrum,
    read_kmer_codes,
    spectrum_from_reads,
    spectrum_from_sequence,
)
from .tiles import (
    TileTable,
    compose_tile,
    compose_tiles_batch,
    split_tile,
    tile_og_rows,
    tile_table_from_reads,
)

__all__ = [
    "BloomPrefilter",
    "KmerSpectrum",
    "spectrum_from_reads",
    "spectrum_from_sequence",
    "read_kmer_codes",
    "complete_neighbors",
    "neighbors_d1",
    "neighbors_d1_batch",
    "neighborhood_size",
    "MaskedKmerIndex",
    "ProbingNeighborIndex",
    "PrecomputedNeighborIndex",
    "xor_patterns",
    "TileTable",
    "tile_og_rows",
    "tile_table_from_reads",
    "compose_tile",
    "compose_tiles_batch",
    "split_tile",
    "merge_spectra",
    "merge_tile_tables",
    "spectrum_from_chunks",
    "tile_table_from_chunks",
    "iter_read_chunks",
    "balanced_merge",
    "build_from_chunks",
    "SpectrumAccumulator",
    "TileAccumulator",
    "ExternalCodeCounter",
    "external_spectrum_from_chunks",
    "external_tile_table_from_chunks",
]
