"""Structured observability for every repro runtime layer.

One subsystem replaces the three disjoint reporting mechanisms that
grew with PRs 1–2 (``mapreduce.types.Counters`` merges,
``parallel.engine.ParallelRunReport``, ad-hoc tool prints):

- **spans** (:mod:`~repro.telemetry.spans`) — nested wall+CPU timers
  forming one execution tree per run, with optional per-stage cProfile
  capture;
- **metrics** (:mod:`~repro.telemetry.metrics`) — a single
  Counters-compatible registry (integer counters + float gauges) that
  the MapReduce engine, reliable layer, and parallel correction engine
  all feed;
- **progress** (:mod:`~repro.telemetry.progress`) — throttled
  heartbeats (reads/sec, chunks done/total) from the innermost task
  loops;
- **report** (:mod:`~repro.telemetry.report`) — the versioned
  ``repro-run-report/1`` JSON document every CLI run and benchmark
  serializes to, with a dependency-free schema validator
  (``python -m repro.telemetry.validate run.json``).

The ambient helpers (:func:`span`, :func:`count`, :func:`tick`, …)
are cheap no-ops unless a :func:`session` is active, so instrumented
library code costs nothing for callers who never ask for telemetry.
This package intentionally imports nothing from the rest of repro.
"""

from .context import (
    Telemetry,
    active_counters,
    count,
    current,
    gauge,
    merge_counters,
    session,
    span,
    tick,
    timing,
)
from .metrics import MetricsRegistry
from .progress import Heartbeat
from .report import (
    JSON_SCHEMA,
    BENCH_SCHEMA_VERSION,
    SCHEMA_VERSION,
    RunReport,
    validate_bench_report_dict,
    validate_report_dict,
    validate_report_file,
)
from .spans import SpanCollector, SpanRecord

__all__ = [
    "Telemetry",
    "session",
    "current",
    "span",
    "count",
    "gauge",
    "timing",
    "tick",
    "merge_counters",
    "active_counters",
    "MetricsRegistry",
    "Heartbeat",
    "RunReport",
    "SCHEMA_VERSION",
    "BENCH_SCHEMA_VERSION",
    "JSON_SCHEMA",
    "validate_report_dict",
    "validate_bench_report_dict",
    "validate_report_file",
    "SpanCollector",
    "SpanRecord",
]
