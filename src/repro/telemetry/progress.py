"""Throttled progress heartbeats (reads/sec, chunks done/total).

A :class:`Heartbeat` counts completed work items and emits at most one
progress line per ``interval`` seconds — cheap enough to tick from the
innermost task loop, quiet enough for a terminal.  With no stream it
still counts (the final totals feed the run report) but never writes.

The clock is injectable so throttling is unit-testable without
sleeping.
"""

from __future__ import annotations

import time
from typing import Callable, TextIO


class Heartbeat:
    """Rate-limited progress reporter over a monotonically growing count."""

    def __init__(
        self,
        label: str = "progress",
        total: int | None = None,
        unit: str = "items",
        interval: float = 2.0,
        stream: TextIO | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.label = label
        self.total = total
        self.unit = unit
        self.interval = max(0.0, float(interval))
        self.stream = stream
        self.clock = clock
        self.done = 0
        self.n_emits = 0
        self._t0 = clock()
        self._last_emit: float | None = None
        self._emitted_done = -1

    def set_total(self, total: int | None) -> None:
        if total is not None:
            self.total = total

    def tick(self, n: int = 1) -> bool:
        """Record ``n`` completed items; emit if the interval elapsed."""
        self.done += n
        return self._maybe_emit(force=False)

    def close(self) -> bool:
        """Force one final line so a run always ends with the totals
        (skipped when the last tick already reported this count)."""
        if self.done == self._emitted_done:
            return False
        return self._maybe_emit(force=True)

    # -- internals ----------------------------------------------------
    def _maybe_emit(self, force: bool) -> bool:
        if self.stream is None:
            return False
        now = self.clock()
        reference = self._last_emit if self._last_emit is not None else self._t0
        if not force and now - reference < self.interval:
            return False
        self._last_emit = now
        self._emitted_done = self.done
        self.n_emits += 1
        self.stream.write(self._format_line(now) + "\n")
        flush = getattr(self.stream, "flush", None)
        if flush is not None:
            flush()
        return True

    def _format_line(self, now: float) -> str:
        elapsed = max(now - self._t0, 1e-9)
        rate = self.done / elapsed
        if self.total:
            pct = 100.0 * self.done / self.total
            head = f"{self.done}/{self.total} {self.unit} ({pct:.1f}%)"
        else:
            head = f"{self.done} {self.unit}"
        return (
            f"[{self.label}] {head} | {rate:.1f} {self.unit}/s "
            f"| {elapsed:.1f}s elapsed"
        )
