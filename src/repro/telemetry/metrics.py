"""One metrics registry for every runtime layer.

:class:`MetricsRegistry` speaks the same protocol as
:class:`repro.mapreduce.types.Counters` (``incr`` / ``merge`` /
``__getitem__`` / ``as_dict``), so it can be handed directly to the
MapReduce engine, the reliable layer, and the parallel correction
engine as their ``counters`` object — every layer's counts land in one
place instead of three.  On top of the integer counters it adds float
**gauges** (point-in-time values: bytes, rates, thresholds) and
accumulating **timings**.

It deliberately does *not* import ``Counters`` (telemetry stays a leaf
package with no repro dependencies); ``items()`` makes it acceptable
to ``Counters.merge`` in the other direction.
"""

from __future__ import annotations

from typing import Any, ItemsView


class MetricsRegistry:
    """Counters-compatible integer counters plus float gauges."""

    def __init__(self) -> None:
        self._data: dict[str, int] = {}
        self._gauges: dict[str, float] = {}

    # -- Counters protocol --------------------------------------------
    def incr(self, name: str, amount: int = 1) -> None:
        self._data[name] = self._data.get(name, 0) + amount

    def merge(self, other: Any) -> None:
        """Merge counters from a Counters, MetricsRegistry, or dict."""
        data = other._data if hasattr(other, "_data") else other
        for k, v in data.items():
            self.incr(k, v)
        if isinstance(other, MetricsRegistry):
            for k, v in other._gauges.items():
                self.gauge(k, v)

    def __getitem__(self, name: str) -> int:
        return self._data.get(name, 0)

    def as_dict(self) -> dict[str, int]:
        return dict(self._data)

    def items(self) -> ItemsView[str, int]:
        """Counter items — lets ``Counters.merge(registry)`` work."""
        return self._data.items()

    # -- gauges & timings ---------------------------------------------
    def gauge(self, name: str, value: float) -> None:
        """Set a point-in-time value (last write wins)."""
        self._gauges[name] = float(value)

    def timing(self, name: str, seconds: float) -> None:
        """Accumulate seconds into a gauge (repeat calls add up)."""
        self._gauges[name] = self._gauges.get(name, 0.0) + float(seconds)

    def gauges(self) -> dict[str, float]:
        return dict(self._gauges)

    def snapshot(self) -> dict[str, dict[str, int] | dict[str, float]]:
        """Both families in one serializable dict."""
        return {"counters": self.as_dict(), "gauges": self.gauges()}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MetricsRegistry({self._data!r}, gauges={self._gauges!r})"
