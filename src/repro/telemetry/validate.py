"""``python -m repro.telemetry.validate`` — check run reports.

Validates one or more JSON files against the ``repro-run-report/1``
schema (see :mod:`repro.telemetry.report`); exit status 0 iff every
file is valid.  Also reachable as ``python -m repro validate-report``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .report import JSON_SCHEMA, validate_report_file


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-validate-report",
        description="Validate run-report JSON files against the "
                    "repro-run-report/1 schema.",
    )
    p.add_argument("reports", nargs="*", type=Path, help="report JSON files")
    p.add_argument(
        "--print-schema", action="store_true",
        help="print the JSON-Schema document and exit",
    )
    p.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress per-file OK lines (problems always print)",
    )
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.print_schema:
        print(json.dumps(JSON_SCHEMA, indent=2))
        return 0
    if not args.reports:
        print("no report files given", file=sys.stderr)
        return 2
    failed = 0
    for path in args.reports:
        problems = validate_report_file(path)
        if problems:
            failed += 1
            print(f"INVALID {path}", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
        elif not args.quiet:
            print(f"ok {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
