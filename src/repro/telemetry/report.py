"""Versioned, machine-readable run reports.

Every run — a CLI invocation, a benchmark, a pipeline — serializes to
one JSON document in the ``repro-run-report/1`` schema so perf numbers
are diffable across commits and feed the ``BENCH_*.json`` trajectory.

Top-level document::

    {
      "schema": "repro-run-report/1",
      "tool": "correct",                  # logical run name
      "status": "ok" | "error",
      "argv": ["reads.fastq", "out.fastq", "--workers", "4"],
      "started_at": 1770000000.0,         # epoch seconds
      "finished_at": 1770000012.5,
      "wall_seconds": 12.5,               # whole-run wall time
      "cpu_seconds": 11.9,                # parent-process CPU time
      "counters": {"reads_corrected": 1040, ...},    # ints
      "gauges": {"bases_changed": 163.0, ...},       # floats
      "stages": [                          # depth-1 spans, flattened
        {"name": "fit", "wall_seconds": 8.1, "cpu_seconds": 8.0,
         "fraction": 0.65},
        ...
      ],
      "spans": {...},                      # full nested span tree
      "environment": {"python": "3.11.8", "platform": "...",
                       "cpu_count": 8, "pid": 1234},
      "extra": {...}                       # tool-specific payload
    }

Validation is hand-rolled (``validate_report_dict``) so the schema
check runs everywhere the package does, with no jsonschema dependency;
:data:`JSON_SCHEMA` mirrors the same rules in JSON-Schema form for
external tooling.
"""

from __future__ import annotations

import json
import numbers
import os
import platform
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .spans import SpanRecord

#: Current report schema identifier; bump the suffix on breaking change.
SCHEMA_VERSION = "repro-run-report/1"

#: Benchmark-artifact schema (the committed ``BENCH_*.json`` trajectory
#: files); see :func:`validate_bench_report_dict`.
BENCH_SCHEMA_VERSION = "repro-bench-report/1"

#: JSON-Schema rendering of the same contract, for external validators.
JSON_SCHEMA: dict[str, Any] = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "$id": "https://repro.invalid/schemas/run-report-v1.json",
    "title": "repro run report v1",
    "type": "object",
    "required": [
        "schema", "tool", "status", "argv", "started_at", "finished_at",
        "wall_seconds", "cpu_seconds", "counters", "gauges", "stages",
        "spans", "environment",
    ],
    "properties": {
        "schema": {"const": SCHEMA_VERSION},
        "tool": {"type": "string", "minLength": 1},
        "status": {"enum": ["ok", "error"]},
        "argv": {"type": "array", "items": {"type": "string"}},
        "started_at": {"type": "number"},
        "finished_at": {"type": "number"},
        "wall_seconds": {"type": "number", "minimum": 0},
        "cpu_seconds": {"type": "number", "minimum": 0},
        "counters": {
            "type": "object", "additionalProperties": {"type": "integer"},
        },
        "gauges": {
            "type": "object", "additionalProperties": {"type": "number"},
        },
        "stages": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "wall_seconds"],
                "properties": {
                    "name": {"type": "string"},
                    "wall_seconds": {"type": "number", "minimum": 0},
                    "cpu_seconds": {"type": "number", "minimum": 0},
                    "fraction": {"type": "number"},
                },
            },
        },
        "spans": {"$ref": "#/$defs/span"},
        "environment": {"type": "object"},
        "extra": {"type": "object"},
        "error": {"type": "string"},
    },
    "$defs": {
        "span": {
            "type": "object",
            "required": ["name", "wall_seconds", "cpu_seconds"],
            "properties": {
                "name": {"type": "string"},
                "started_at": {"type": "number"},
                "wall_seconds": {"type": "number", "minimum": 0},
                "cpu_seconds": {"type": "number", "minimum": 0},
                "meta": {"type": "object"},
                "profile": {"type": "array"},
                "children": {
                    "type": "array", "items": {"$ref": "#/$defs/span"},
                },
            },
        },
    },
}


def environment_info() -> dict[str, Any]:
    """The run's execution environment (stamped into every report)."""
    try:
        cpu_count = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpu_count = os.cpu_count() or 1
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": cpu_count,
        "pid": os.getpid(),
        "argv0": sys.argv[0] if sys.argv else "",
    }


@dataclass
class RunReport:
    """One run's complete execution record, JSON round-trippable."""

    tool: str
    argv: list[str] = field(default_factory=list)
    status: str = "ok"
    started_at: float = 0.0
    finished_at: float = 0.0
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    stages: list[dict[str, Any]] = field(default_factory=list)
    spans: dict[str, Any] = field(default_factory=dict)
    environment: dict[str, Any] = field(default_factory=dict)
    extra: dict[str, Any] = field(default_factory=dict)
    error: str | None = None
    schema: str = SCHEMA_VERSION

    # -- construction -------------------------------------------------
    @classmethod
    def from_span_tree(
        cls,
        tool: str,
        root: SpanRecord,
        counters: dict[str, int] | None = None,
        gauges: dict[str, float] | None = None,
        argv: list[str] | None = None,
        status: str = "ok",
        error: str | None = None,
        extra: dict[str, Any] | None = None,
    ) -> "RunReport":
        """Build a report from a finished span tree + metric snapshots."""
        total = root.wall_seconds
        stages = [
            {
                "name": c.name,
                "wall_seconds": round(c.wall_seconds, 6),
                "cpu_seconds": round(c.cpu_seconds, 6),
                "fraction": round(c.wall_seconds / total, 4) if total > 0 else 0.0,
            }
            for c in root.children
        ]
        return cls(
            tool=tool,
            argv=[str(a) for a in (argv or [])],
            status=status,
            started_at=root.started_at,
            finished_at=root.started_at + root.wall_seconds,
            wall_seconds=round(root.wall_seconds, 6),
            cpu_seconds=round(root.cpu_seconds, 6),
            counters={k: int(v) for k, v in (counters or {}).items()},
            gauges={k: float(v) for k, v in (gauges or {}).items()},
            stages=stages,
            spans=root.as_dict(),
            environment=environment_info(),
            extra=dict(extra or {}),
            error=error,
        )

    # -- derived ------------------------------------------------------
    def stage_fraction(self) -> float:
        """Fraction of the run's wall time covered by its stages."""
        if self.wall_seconds <= 0:
            return 0.0
        return sum(s["wall_seconds"] for s in self.stages) / self.wall_seconds

    def span_tree(self) -> SpanRecord:
        return SpanRecord.from_dict(self.spans)

    # -- serialization ------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {
            "schema": self.schema,
            "tool": self.tool,
            "status": self.status,
            "argv": list(self.argv),
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "stages": list(self.stages),
            "spans": dict(self.spans),
            "environment": dict(self.environment),
            "extra": dict(self.extra),
        }
        if self.error is not None:
            d["error"] = self.error
        return d

    def to_json(self, indent: int | None = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def write(self, path: str | Path) -> Path:
        """Atomically and durably write the report JSON to ``path``.

        Same temp-file + fsync + rename discipline as
        :mod:`repro.io.atomic` (inlined here because telemetry
        deliberately imports nothing from the rest of repro): a crash
        mid-write never leaves a truncated report at the final path.
        """
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
        with open(tmp, "wt") as fh:
            fh.write(self.to_json() + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return path

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "RunReport":
        return cls(
            tool=d["tool"],
            argv=list(d.get("argv", [])),
            status=d.get("status", "ok"),
            started_at=float(d.get("started_at", 0.0)),
            finished_at=float(d.get("finished_at", 0.0)),
            wall_seconds=float(d.get("wall_seconds", 0.0)),
            cpu_seconds=float(d.get("cpu_seconds", 0.0)),
            counters=dict(d.get("counters", {})),
            gauges=dict(d.get("gauges", {})),
            stages=list(d.get("stages", [])),
            spans=dict(d.get("spans", {})),
            environment=dict(d.get("environment", {})),
            extra=dict(d.get("extra", {})),
            error=d.get("error"),
            schema=d.get("schema", SCHEMA_VERSION),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str | Path) -> "RunReport":
        return cls.from_json(Path(path).read_text())


# -- validation ---------------------------------------------------------------
def _is_number(x: object) -> bool:
    return isinstance(x, numbers.Real) and not isinstance(x, bool)


def _check_span(
    span: Any, where: str, problems: list[str], depth: int = 0
) -> None:
    if depth > 64:
        problems.append(f"{where}: span tree deeper than 64 levels")
        return
    if not isinstance(span, dict):
        problems.append(f"{where}: span must be an object")
        return
    if not isinstance(span.get("name"), str) or not span.get("name"):
        problems.append(f"{where}: span missing non-empty 'name'")
    for key in ("wall_seconds", "cpu_seconds"):
        v = span.get(key)
        if not _is_number(v) or v < 0:
            problems.append(f"{where}: span {key!r} must be a number >= 0")
    children = span.get("children", [])
    if not isinstance(children, list):
        problems.append(f"{where}: span 'children' must be a list")
        return
    for i, child in enumerate(children):
        _check_span(child, f"{where}.children[{i}]", problems, depth + 1)


def validate_report_dict(data: object) -> list[str]:
    """Check ``data`` against the run-report schema; return problems.

    An empty list means the document is schema-valid.
    """
    problems: list[str] = []
    if not isinstance(data, dict):
        return ["report must be a JSON object"]
    if data.get("schema") != SCHEMA_VERSION:
        problems.append(
            f"schema must be {SCHEMA_VERSION!r}, got {data.get('schema')!r}"
        )
    if not isinstance(data.get("tool"), str) or not data.get("tool"):
        problems.append("'tool' must be a non-empty string")
    if data.get("status") not in ("ok", "error"):
        problems.append("'status' must be 'ok' or 'error'")
    if not isinstance(data.get("argv"), list) or any(
        not isinstance(a, str) for a in data.get("argv", [])
    ):
        problems.append("'argv' must be a list of strings")
    for key in ("started_at", "finished_at"):
        if not _is_number(data.get(key)):
            problems.append(f"'{key}' must be a number")
    for key in ("wall_seconds", "cpu_seconds"):
        v = data.get(key)
        if not _is_number(v) or v < 0:
            problems.append(f"'{key}' must be a number >= 0")
    counters = data.get("counters")
    if not isinstance(counters, dict):
        problems.append("'counters' must be an object")
    else:
        for k, v in counters.items():
            if not isinstance(v, int) or isinstance(v, bool):
                problems.append(f"counter {k!r} must be an integer, got {v!r}")
    gauges = data.get("gauges")
    if not isinstance(gauges, dict):
        problems.append("'gauges' must be an object")
    else:
        for k, v in gauges.items():
            if not _is_number(v):
                problems.append(f"gauge {k!r} must be a number, got {v!r}")
    stages = data.get("stages")
    if not isinstance(stages, list):
        problems.append("'stages' must be a list")
    else:
        for i, s in enumerate(stages):
            if not isinstance(s, dict):
                problems.append(f"stages[{i}] must be an object")
                continue
            if not isinstance(s.get("name"), str):
                problems.append(f"stages[{i}] missing string 'name'")
            if not _is_number(s.get("wall_seconds")):
                problems.append(f"stages[{i}] missing numeric 'wall_seconds'")
    if "spans" not in data:
        problems.append("'spans' (root span tree) is required")
    else:
        _check_span(data["spans"], "spans", problems)
    if not isinstance(data.get("environment"), dict):
        problems.append("'environment' must be an object")
    if "extra" in data and not isinstance(data["extra"], dict):
        problems.append("'extra' must be an object")
    return problems


def validate_bench_report_dict(data: object) -> list[str]:
    """Check ``data`` against the ``repro-bench-report/1`` schema.

    A bench report is the committed perf-trajectory artifact::

        {
          "schema": "repro-bench-report/1",
          "benchmark": "hotpath_ablation",
          "corpus": {"genome_length": 12000, "coverage": 30.0, ...},
          "environment": {...},            # same shape as run reports
          "configs": [                     # one entry per ablation
            {"name": "scalar", "wall_seconds": 12.3,
             "reads_per_second": 810.5, "speedup_vs_baseline": 1.0,
             "equivalent_to_baseline": true, ...},
            ...
          ],
          "baseline": "scalar",
          "speedup_floor": 3.0             # asserted floor (optional)
        }

    Every config's output must be byte-identical to the baseline's
    (``equivalent_to_baseline``) — a bench artifact claiming speed on
    divergent output is invalid by construction.
    """
    problems: list[str] = []
    if not isinstance(data, dict):
        return ["report must be a JSON object"]
    if data.get("schema") != BENCH_SCHEMA_VERSION:
        problems.append(
            f"schema must be {BENCH_SCHEMA_VERSION!r}, "
            f"got {data.get('schema')!r}"
        )
    if not isinstance(data.get("benchmark"), str) or not data.get("benchmark"):
        problems.append("'benchmark' must be a non-empty string")
    if not isinstance(data.get("corpus"), dict):
        problems.append("'corpus' must be an object")
    if not isinstance(data.get("environment"), dict):
        problems.append("'environment' must be an object")
    baseline = data.get("baseline")
    if not isinstance(baseline, str) or not baseline:
        problems.append("'baseline' must be a non-empty string")
    if "speedup_floor" in data and (
        not _is_number(data["speedup_floor"]) or data["speedup_floor"] <= 0
    ):
        problems.append("'speedup_floor' must be a number > 0")
    configs = data.get("configs")
    if not isinstance(configs, list) or not configs:
        problems.append("'configs' must be a non-empty list")
        return problems
    names = []
    for i, c in enumerate(configs):
        if not isinstance(c, dict):
            problems.append(f"configs[{i}] must be an object")
            continue
        name = c.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"configs[{i}] missing non-empty 'name'")
        else:
            names.append(name)
        for key in ("wall_seconds", "reads_per_second"):
            if not _is_number(c.get(key)) or c.get(key) < 0:
                problems.append(
                    f"configs[{i}] {key!r} must be a number >= 0"
                )
        if not _is_number(c.get("speedup_vs_baseline")):
            problems.append(
                f"configs[{i}] 'speedup_vs_baseline' must be a number"
            )
        if not isinstance(c.get("equivalent_to_baseline"), bool):
            problems.append(
                f"configs[{i}] 'equivalent_to_baseline' must be a boolean"
            )
        elif not c["equivalent_to_baseline"]:
            problems.append(
                f"configs[{i}] ({name!r}) output diverged from the "
                "baseline — a bench artifact must prove equivalence"
            )
    if len(names) != len(set(names)):
        problems.append("config names must be unique")
    if isinstance(baseline, str) and names and baseline not in names:
        problems.append(f"baseline {baseline!r} not among config names")
    return problems


def validate_report_file(path: str | Path) -> list[str]:
    """Validate one report file; unreadable/unparsable counts as invalid.

    Dispatches on the document's ``schema`` field: run reports
    (``repro-run-report/1``) and bench artifacts
    (``repro-bench-report/1``) are both accepted.
    """
    try:
        data = json.loads(Path(path).read_text())
    except OSError as e:
        return [f"cannot read {path}: {e}"]
    except json.JSONDecodeError as e:
        return [f"{path} is not valid JSON: {e}"]
    if isinstance(data, dict) and data.get("schema") == BENCH_SCHEMA_VERSION:
        return validate_bench_report_dict(data)
    return validate_report_dict(data)
