"""Hierarchical spans: wall + CPU timing for every run phase.

A :class:`SpanRecord` is one timed region of a run — a CLI stage, a
corrector fit, a MapReduce phase — with nested children forming the
run's execution tree.  A :class:`SpanCollector` owns one tree and a
cursor into it; ``collector.span(name)`` opens a child under the
current cursor, so arbitrarily deep subsystems compose without passing
records around (the ambient plumbing lives in
:mod:`repro.telemetry.context`).

Timing uses ``time.perf_counter`` (wall) and ``time.process_time``
(CPU of this process; worker-pool CPU shows up only in the parent's
wait, which is exactly the "how parallel was this really" signal).

Stage-level spans can optionally run under :mod:`cProfile`; the top
functions by cumulative time are stored on the record (see
``SpanCollector(profile=True)``).  Profilers never nest: while one
span is profiling, descendants time normally.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:
    import cProfile

#: Entries kept from a profiled span, by cumulative time.
PROFILE_TOP_N = 20


@dataclass
class SpanRecord:
    """One timed region; children are the regions opened inside it."""

    name: str
    started_at: float = 0.0  # epoch seconds (time.time)
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    meta: dict[str, Any] = field(default_factory=dict)
    children: list["SpanRecord"] = field(default_factory=list)
    #: Top functions by cumulative time when the span was profiled.
    profile: list[dict[str, Any]] | None = None

    def iter_all(self) -> Iterator["SpanRecord"]:
        """This record and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.iter_all()

    def find(self, name: str) -> "SpanRecord | None":
        """First descendant (or self) with ``name``, depth first."""
        for rec in self.iter_all():
            if rec.name == name:
                return rec
        return None

    def child_wall_seconds(self) -> float:
        return sum(c.wall_seconds for c in self.children)

    def as_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {
            "name": self.name,
            "started_at": round(self.started_at, 6),
            "wall_seconds": round(self.wall_seconds, 6),
            "cpu_seconds": round(self.cpu_seconds, 6),
        }
        if self.meta:
            d["meta"] = dict(self.meta)
        if self.children:
            d["children"] = [c.as_dict() for c in self.children]
        if self.profile is not None:
            d["profile"] = list(self.profile)
        return d

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "SpanRecord":
        return cls(
            name=d["name"],
            started_at=float(d.get("started_at", 0.0)),
            wall_seconds=float(d.get("wall_seconds", 0.0)),
            cpu_seconds=float(d.get("cpu_seconds", 0.0)),
            meta=dict(d.get("meta", {})),
            children=[cls.from_dict(c) for c in d.get("children", [])],
            profile=d.get("profile"),
        )


def _profile_top(
    prof: "cProfile.Profile", limit: int = PROFILE_TOP_N
) -> list[dict[str, Any]]:
    """Flatten a cProfile run to its top entries by cumulative time."""
    import pstats

    stats = pstats.Stats(prof)
    rows: list[dict[str, Any]] = []
    for (filename, lineno, funcname), (cc, nc, tt, ct, _callers) in (
        stats.stats.items()  # type: ignore[attr-defined]
    ):
        rows.append(
            {
                "function": f"{filename}:{lineno}({funcname})",
                "ncalls": int(nc),
                "tottime": round(tt, 6),
                "cumtime": round(ct, 6),
            }
        )
    rows.sort(key=lambda r: r["cumtime"], reverse=True)
    return rows[:limit]


class SpanCollector:
    """Owns one span tree and the cursor where new spans open."""

    def __init__(self, name: str = "run", profile: bool = False) -> None:
        self.root = SpanRecord(name=name, started_at=time.time())
        self.profile_stages = profile
        self._stack: list[SpanRecord] = [self.root]
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        self._profiler_active = False
        self._finished = False

    @property
    def depth(self) -> int:
        """Nesting depth of the cursor (0 = at the root)."""
        return len(self._stack) - 1

    @property
    def current(self) -> SpanRecord:
        return self._stack[-1]

    @contextmanager
    def span(
        self, name: str, profile: bool | None = None, **meta: Any
    ) -> Iterator[SpanRecord]:
        """Open a child span under the cursor; yields its record.

        ``profile`` defaults to profiling stage-level spans (direct
        children of the root) when the collector was built with
        ``profile=True``; pass True/False to override per span.
        """
        rec = SpanRecord(name=name, started_at=time.time(), meta=dict(meta))
        self._stack[-1].children.append(rec)
        self._stack.append(rec)
        if profile is None:
            profile = self.profile_stages and self.depth == 1
        prof = None
        if profile and not self._profiler_active:
            import cProfile

            prof = cProfile.Profile()
            self._profiler_active = True
            prof.enable()
        w0 = time.perf_counter()
        c0 = time.process_time()
        try:
            yield rec
        finally:
            rec.wall_seconds = time.perf_counter() - w0
            rec.cpu_seconds = time.process_time() - c0
            if prof is not None:
                prof.disable()
                self._profiler_active = False
                rec.profile = _profile_top(prof)
            self._stack.pop()

    def finish(self) -> SpanRecord:
        """Close the root span (idempotent) and return it."""
        if not self._finished:
            self.root.wall_seconds = time.perf_counter() - self._wall0
            self.root.cpu_seconds = time.process_time() - self._cpu0
            self._finished = True
        return self.root
