"""Ambient telemetry: one session object every layer can reach.

A :class:`Telemetry` bundles the three primitives — a
:class:`~repro.telemetry.spans.SpanCollector`, a
:class:`~repro.telemetry.metrics.MetricsRegistry`, and a family of
:class:`~repro.telemetry.progress.Heartbeat`\\ s — for one run.  The
module-level helpers (:func:`span`, :func:`count`, :func:`tick`,
:func:`active_counters`) act on the *current* session held in a
``contextvars.ContextVar``, and degrade to cheap no-ops when none is
active, so deep layers (MapReduce engine, parallel correction,
correctors) can instrument unconditionally without threading a
telemetry argument through every signature — and library users who
never open a session pay essentially nothing.

Typical CLI use::

    with telemetry.session("correct", progress=True) as tel:
        with telemetry.span("fit"):
            corrector = ReptileCorrector.fit(reads)
        ...
    tel.report(argv=argv).write("run.json")
"""

from __future__ import annotations

import contextvars
import sys
from contextlib import AbstractContextManager, contextmanager
from typing import Any, Iterator, TextIO

from .metrics import MetricsRegistry
from .progress import Heartbeat
from .report import RunReport
from .spans import SpanCollector, SpanRecord


class Telemetry:
    """All observability state for one run."""

    def __init__(
        self,
        tool: str = "run",
        registry: MetricsRegistry | None = None,
        progress: bool = False,
        progress_stream: TextIO | None = None,
        heartbeat_interval: float = 2.0,
        profile: bool = False,
    ) -> None:
        self.tool = tool
        self.registry = registry if registry is not None else MetricsRegistry()
        self.collector = SpanCollector(name=tool, profile=profile)
        self.heartbeat_interval = heartbeat_interval
        self.heartbeats: dict[str, Heartbeat] = {}
        self.status = "ok"
        self.error: str | None = None
        self._progress_stream = (
            (progress_stream or sys.stderr) if progress else None
        )

    # -- spans --------------------------------------------------------
    def span(
        self, name: str, **meta: Any
    ) -> AbstractContextManager[SpanRecord]:
        return self.collector.span(name, **meta)

    # -- counters -----------------------------------------------------
    def count(self, name: str, amount: int = 1) -> None:
        self.registry.incr(name, amount)

    def merge_counters(self, counters: Any) -> None:
        """Merge a Counters/registry/dict unless it *is* the registry
        (layers that were handed the session registry directly would
        otherwise double count)."""
        if counters is not self.registry and counters is not None:
            self.registry.merge(counters)

    # -- heartbeats ---------------------------------------------------
    def heartbeat(
        self, key: str, total: int | None = None, unit: str = "items"
    ) -> Heartbeat:
        """Get-or-create the heartbeat for ``key`` (updating its total)."""
        hb = self.heartbeats.get(key)
        if hb is None:
            hb = Heartbeat(
                label=f"{self.tool}:{key}",
                total=total,
                unit=unit,
                interval=self.heartbeat_interval,
                stream=self._progress_stream,
            )
            self.heartbeats[key] = hb
        else:
            hb.set_total(total)
        return hb

    def tick(
        self, key: str, n: int = 1, total: int | None = None,
        unit: str = "items",
    ) -> None:
        self.heartbeat(key, total=total, unit=unit).tick(n)

    # -- lifecycle ----------------------------------------------------
    def finish(self) -> SpanRecord:
        for hb in self.heartbeats.values():
            hb.close()
        return self.collector.finish()

    def report(self, argv: list[str] | None = None, extra: dict | None = None) -> RunReport:
        """Build the run report (finishing the span tree if needed)."""
        root = self.finish()
        return RunReport.from_span_tree(
            tool=self.tool,
            root=root,
            counters=self.registry.as_dict(),
            gauges=self.registry.gauges(),
            argv=argv,
            status=self.status,
            error=self.error,
            extra=extra,
        )


_CURRENT: contextvars.ContextVar[Telemetry | None] = contextvars.ContextVar(
    "repro_telemetry", default=None
)


def current() -> Telemetry | None:
    """The active session, or None."""
    return _CURRENT.get()


@contextmanager
def session(tool: str = "run", **kwargs: Any) -> Iterator[Telemetry]:
    """Open a :class:`Telemetry` as the current ambient session.

    On exit the session is finished (root span closed, heartbeats
    flushed); an escaping exception marks ``status="error"`` and is
    re-raised, so a report built afterwards records the failure.
    """
    tel = Telemetry(tool, **kwargs)
    token = _CURRENT.set(tel)
    try:
        yield tel
    except BaseException as e:
        tel.status = "error"
        tel.error = f"{type(e).__name__}: {e}"
        raise
    finally:
        _CURRENT.reset(token)
        tel.finish()


@contextmanager
def span(name: str, **meta: Any) -> Iterator[SpanRecord | None]:
    """Ambient span: records under the current session, no-op without one."""
    tel = current()
    if tel is None:
        yield None
        return
    with tel.span(name, **meta) as rec:
        yield rec


def count(name: str, amount: int = 1) -> None:
    """Ambient counter increment (no-op without a session)."""
    tel = current()
    if tel is not None:
        tel.count(name, amount)


def gauge(name: str, value: float) -> None:
    """Ambient gauge set (no-op without a session)."""
    tel = current()
    if tel is not None:
        tel.registry.gauge(name, value)


def timing(name: str, seconds: float) -> None:
    """Ambient timing accumulation (no-op without a session)."""
    tel = current()
    if tel is not None:
        tel.registry.timing(name, seconds)


def tick(
    key: str, n: int = 1, total: int | None = None, unit: str = "items"
) -> None:
    """Ambient heartbeat tick (no-op without a session)."""
    tel = current()
    if tel is not None:
        tel.tick(key, n, total=total, unit=unit)


def merge_counters(counters: Any) -> None:
    """Ambient merge of a finished layer's counters (no-op without a
    session; skips the session's own registry to avoid double counts)."""
    tel = current()
    if tel is not None:
        tel.merge_counters(counters)


def active_counters() -> MetricsRegistry | None:
    """The session registry, for layers that take a ``counters`` object
    (None without a session — callers fall back to a local Counters)."""
    tel = current()
    return tel.registry if tel is not None else None
