"""Crash-safe SQLite job store with lease-based claiming.

The durable core of the correction service (the py_experimenter /
elogfetch pattern: the database *is* the coordination protocol).  One
WAL-mode SQLite file holds every job; any number of worker
*processes* on the machine hosting the spool coordinate exclusively
through short ``BEGIN IMMEDIATE`` transactions, so there is no daemon
to lose state when a worker dies.

.. note:: Single host, local filesystem.  WAL mode coordinates
   writers through a shared-memory ``-shm`` sidecar, which SQLite
   documents as unsafe over network filesystems — a spool on NFS/SMB
   risks store corruption and broken lease mutual exclusion.  Keep
   the spool on a local filesystem and scale out with more worker
   processes on that host, not with cross-host mounts.

Job lifecycle::

                 submit            claim(worker)
    (new) ───────────────▶ pending ─────────────▶ running ──▶ succeeded
              retry ▲          ▲                  │   │
                    │          │ lease expired /  │   └─────▶ failed
       failed/cancelled        │ fail_attempt     │  (attempts
                    ▲          │ (backoff+jitter) │   exhausted)
                    └──────────┴──────────────────┘
                               cancel at any point ──▶ cancelled

Claiming is lease-based: ``claim`` marks a job ``running`` with a
``lease_expires`` deadline the worker must keep pushing forward via
:meth:`JobStore.renew`.  A worker that is ``kill -9``'d simply stops
renewing; once the lease lapses, any claimer reaps the job back to
``pending`` with an exponential-backoff-plus-jitter ``not_before``
gate (the injectable-Random :class:`~repro.mapreduce.types.RetryPolicy`
pattern, so every retry schedule is reproducible).  Attempts are
counted at claim time; a job that keeps losing its lease fails after
``max_attempts`` with a diagnosable error instead of looping forever.

Durability: WAL journal + ``synchronous=FULL`` means a torn process
leaves the store at the last committed transition — at worst a job
re-runs, and artifacts are atomic/idempotent, so at-least-once
execution still yields byte-identical output.
"""

from __future__ import annotations

import json
import sqlite3
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator

from .. import telemetry
from ..mapreduce.types import RetryPolicy
from .spec import DEFAULT_TENANT, JOB_STATES, JobSpec, validate_tenant
from .tenants import tenant_weight

#: Job states (the full set the CLI and docs enumerate), derived from
#: the ``repro-job/1`` wire vocabulary so store and schema can never
#: drift apart.
STATES = JOB_STATES
PENDING, RUNNING, SUCCEEDED, FAILED, CANCELLED = STATES

#: States with no further transitions (except an explicit ``retry``).
TERMINAL_STATES = (SUCCEEDED, FAILED, CANCELLED)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id            TEXT PRIMARY KEY,
    spec          TEXT NOT NULL,
    state         TEXT NOT NULL,
    tenant        TEXT NOT NULL DEFAULT 'default',
    attempts      INTEGER NOT NULL DEFAULT 0,
    claim_seq     INTEGER NOT NULL DEFAULT 0,
    max_attempts  INTEGER NOT NULL DEFAULT 3,
    not_before    REAL NOT NULL DEFAULT 0,
    lease_owner   TEXT,
    lease_expires REAL,
    submitted_at  REAL NOT NULL,
    started_at    REAL,
    finished_at   REAL,
    error         TEXT,
    result        TEXT
);
CREATE INDEX IF NOT EXISTS jobs_by_state ON jobs (state, not_before);
"""

#: Applied after :func:`_migrate` guarantees the ``tenant`` column
#: exists — these statements reference it, so they cannot ride in
#: ``_SCHEMA`` (which must still open pre-tenant stores).
_SCHEMA_TENANTS = """
CREATE INDEX IF NOT EXISTS jobs_by_tenant ON jobs (tenant, state);
CREATE TABLE IF NOT EXISTS tenant_sched (
    tenant TEXT PRIMARY KEY,
    vpass  REAL NOT NULL DEFAULT 0
);
"""

#: Reserved ``tenant_sched`` row holding the scheduler's virtual time
#: (the winning pass of the most recent claim).  ``#`` is outside the
#: tenant-name alphabet, so no real tenant can shadow it.
_VTIME_KEY = "#vtime"


def _migrate(conn: sqlite3.Connection) -> None:
    """Bring a pre-tenant store up to the current schema in place.

    Additive-only (``ALTER TABLE ... ADD COLUMN`` with a default), so
    an old worker binary can still read a migrated store and every
    pre-existing job lands in the ``default`` tenant — single-tenant
    deployments observe byte-identical behavior.
    """
    cols = {
        row["name"]
        for row in conn.execute("PRAGMA table_info(jobs)").fetchall()
    }
    if "tenant" not in cols:
        conn.execute(
            "ALTER TABLE jobs ADD COLUMN tenant TEXT NOT NULL"
            " DEFAULT 'default'"
        )


class LeaseLost(RuntimeError):
    """This worker no longer owns the job (lease reaped or cancelled)."""


@dataclass(frozen=True)
class JobRecord:
    """One row of the jobs table, spec decoded."""

    id: str
    spec: JobSpec
    state: str
    attempts: int
    #: Total claims ever granted for this job.  Unlike ``attempts``
    #: (refunded by :meth:`JobStore.release`, reset by
    #: :meth:`JobStore.retry`) this only ever grows, so it doubles as
    #: a fencing token: the runner keys each claim's work files by it,
    #: and no two claims — however they overlap in wall-clock time —
    #: can ever share one.
    claim_seq: int
    max_attempts: int
    not_before: float
    lease_owner: str | None
    lease_expires: float | None
    submitted_at: float
    started_at: float | None
    finished_at: float | None
    error: str | None
    result: dict | None
    #: Queue the job is scheduled under (see :mod:`.tenants`).  Last
    #: and defaulted so pre-tenant positional construction still works.
    tenant: str = DEFAULT_TENANT

    def as_dict(self) -> dict:
        d = {
            "id": self.id,
            "state": self.state,
            "tenant": self.tenant,
            "attempts": self.attempts,
            "claim_seq": self.claim_seq,
            "max_attempts": self.max_attempts,
            "not_before": self.not_before,
            "lease_owner": self.lease_owner,
            "lease_expires": self.lease_expires,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "result": self.result,
            "spec": self.spec.to_dict(),
        }
        return d


def _record_from_row(row: sqlite3.Row) -> JobRecord:
    return JobRecord(
        id=row["id"],
        spec=JobSpec.from_json(row["spec"]),
        state=row["state"],
        tenant=row["tenant"],
        attempts=row["attempts"],
        claim_seq=row["claim_seq"],
        max_attempts=row["max_attempts"],
        not_before=row["not_before"],
        lease_owner=row["lease_owner"],
        lease_expires=row["lease_expires"],
        submitted_at=row["submitted_at"],
        started_at=row["started_at"],
        finished_at=row["finished_at"],
        error=row["error"],
        result=json.loads(row["result"]) if row["result"] else None,
    )


class JobStore:
    """Lease-claimed job queue over one WAL-mode SQLite file.

    ``clock`` is injectable (tests pin it to a fake clock to step
    leases deterministically); it defaults to the wall clock because
    leases must be comparable across independent worker processes.
    ``backoff`` shapes the retry schedule for reaped/failed attempts;
    jitter comes from the policy's deterministic per-(seed, attempt,
    salt) ``random.Random``, never from global RNG state.
    """

    def __init__(
        self,
        path: str | Path,
        clock: Callable[[], float] = time.time,
        backoff: RetryPolicy | None = None,
        busy_timeout: float = 30.0,
        tenant_weights: dict[str, float] | None = None,
    ) -> None:
        self.path = Path(path)
        if str(self.path.parent) not in ("", "."):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._clock = clock
        self._backoff = backoff if backoff is not None else RetryPolicy(
            backoff_base=0.5, backoff_factor=2.0, backoff_jitter=0.25
        )
        self._weights = dict(tenant_weights or {})
        # check_same_thread=False: a JobStore may be *created* on one
        # thread and *used* on another (the HTTP server's store pool,
        # embedded worker threads).  Callers still must not share one
        # instance between threads concurrently — cross-process safety
        # comes from WAL + IMMEDIATE transactions, intra-process
        # exclusivity from the owning worker/pool discipline.
        self._conn = sqlite3.connect(
            str(self.path), timeout=busy_timeout, isolation_level=None,
            check_same_thread=False,
        )
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=FULL")
        self._conn.executescript(_SCHEMA)
        _migrate(self._conn)
        self._conn.executescript(_SCHEMA_TENANTS)

    # -- lifecycle ----------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @contextmanager
    def _txn(self) -> Iterator[sqlite3.Connection]:
        """One IMMEDIATE (write-locked) transaction."""
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            yield self._conn
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        else:
            self._conn.execute("COMMIT")

    # -- submission ---------------------------------------------------
    def submit(
        self,
        spec: JobSpec,
        max_attempts: int = 3,
        job_id: str | None = None,
        tenant: str = DEFAULT_TENANT,
    ) -> str:
        """Insert a new ``pending`` job; returns its id.

        Auto-generated ids step past any caller-supplied id of the
        same ``job-%06d`` shape instead of colliding; an explicit
        ``job_id`` that already exists raises ``ValueError``.
        ``tenant`` files the job under a fair-claiming queue (see
        :meth:`claim`); the default tenant preserves single-queue
        FIFO behavior exactly.
        """
        spec.validate()
        validate_tenant(tenant)
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        now = self._clock()
        with self._txn() as conn:
            if job_id is None:
                row = conn.execute(
                    "SELECT COALESCE(MAX(rowid), 0) + 1 AS n FROM jobs"
                ).fetchone()
                n = int(row["n"])
                while True:
                    job_id = f"job-{n:06d}"
                    taken = conn.execute(
                        "SELECT 1 FROM jobs WHERE id = ?", (job_id,)
                    ).fetchone()
                    if taken is None:
                        break
                    n += 1
            try:
                conn.execute(
                    "INSERT INTO jobs (id, spec, state, tenant, attempts,"
                    " max_attempts, not_before, submitted_at)"
                    " VALUES (?, ?, ?, ?, 0, ?, 0, ?)",
                    (
                        job_id, spec.to_json(), PENDING, tenant,
                        max_attempts, now,
                    ),
                )
            except sqlite3.IntegrityError:
                raise ValueError(
                    f"job id {job_id!r} already exists"
                ) from None
        telemetry.count("tenants.submitted")
        return job_id

    # -- claiming and leases ------------------------------------------
    def _backoff_seconds(self, job_id: str, attempt: int) -> float:
        # Salted by the job id so concurrent retrying jobs do not
        # thundering-herd the store on identical schedules.
        salt = zlib.crc32(job_id.encode("utf-8"))
        return self._backoff.backoff_seconds(max(1, attempt), salt=salt)

    def _reap_expired(self, conn: sqlite3.Connection, now: float) -> int:
        """Requeue (or fail) every running job whose lease has lapsed.

        Runs inside the claim transaction, so reaping and claiming are
        one atomic decision.  Returns the number of reaped jobs.
        """
        rows = conn.execute(
            "SELECT id, attempts, max_attempts FROM jobs"
            " WHERE state = ? AND lease_expires IS NOT NULL"
            " AND lease_expires <= ? ORDER BY rowid",
            (RUNNING, now),
        ).fetchall()
        for row in rows:
            if row["attempts"] >= row["max_attempts"]:
                conn.execute(
                    "UPDATE jobs SET state = ?, lease_owner = NULL,"
                    " lease_expires = NULL, finished_at = ?, error = ?"
                    " WHERE id = ?",
                    (
                        FAILED,
                        now,
                        f"lease expired after {row['attempts']} attempt(s);"
                        " attempts exhausted",
                        row["id"],
                    ),
                )
            else:
                delay = self._backoff_seconds(row["id"], row["attempts"])
                conn.execute(
                    "UPDATE jobs SET state = ?, lease_owner = NULL,"
                    " lease_expires = NULL, not_before = ?,"
                    " error = ? WHERE id = ?",
                    (
                        PENDING,
                        now + delay,
                        f"lease expired on attempt {row['attempts']};"
                        f" requeued with {delay:.3f}s backoff",
                        row["id"],
                    ),
                )
        return len(rows)

    def _pick_tenant(
        self, conn: sqlite3.Connection, now: float
    ) -> str | None:
        """Stride-schedule the next tenant to claim from, or ``None``.

        Every tenant owns a persistent *virtual pass* (``tenant_sched``
        table, shared by all worker processes); the runnable tenant
        with the smallest pass wins (name as deterministic tie-break)
        and its pass advances by ``1 / weight``.  A *virtual time* row
        (the winning pass of the most recent claim) is persisted
        alongside, and every runnable tenant's pass is clamped up to
        it — so a tenant first seen mid-stream, or returning after an
        idle stretch, is served promptly but is never owed the whole
        history it sat out.  Weighted round-robin falls out: claim
        frequency is proportional to weight while tenants compete, and
        FIFO order within a tenant is untouched.
        """
        tenants = [
            row["tenant"]
            for row in conn.execute(
                "SELECT DISTINCT tenant FROM jobs WHERE state = ?"
                " AND not_before <= ?",
                (PENDING, now),
            ).fetchall()
        ]
        if not tenants:
            return None
        vpass = {
            row["tenant"]: row["vpass"]
            for row in conn.execute(
                "SELECT tenant, vpass FROM tenant_sched"
            ).fetchall()
        }
        # "#" cannot appear in a valid tenant name, so the vtime row
        # can never collide with a real tenant's schedule entry.
        vtime = vpass.pop(_VTIME_KEY, 0.0)
        effective = {
            t: max(vpass.get(t, vtime), vtime) for t in tenants
        }
        chosen = min(tenants, key=lambda t: (effective[t], t))
        advance = 1.0 / tenant_weight(self._weights, chosen)
        conn.executemany(
            "INSERT INTO tenant_sched (tenant, vpass) VALUES (?, ?)"
            " ON CONFLICT(tenant) DO UPDATE SET vpass = excluded.vpass",
            [
                (chosen, effective[chosen] + advance),
                (_VTIME_KEY, effective[chosen]),
            ],
        )
        return chosen

    def claim(
        self, worker_id: str, lease_seconds: float = 60.0
    ) -> JobRecord | None:
        """Atomically claim the next runnable job fairly, or ``None``.

        Exactly one concurrent claimer can win any given job: the
        SELECT and UPDATE share one IMMEDIATE transaction, which
        SQLite serializes across connections and processes.  Tenant
        choice is weighted round-robin (:meth:`_pick_tenant`); within
        the chosen tenant, claiming is strictly FIFO.
        """
        now = self._clock()
        with self._txn() as conn:
            self._reap_expired(conn, now)
            tenant = self._pick_tenant(conn, now)
            if tenant is None:
                return None
            # FIFO by submission time (rowid tie-break), never by the
            # text id: zero-padded ids stop sorting numerically past
            # six digits and custom ids would jump the queue.
            row = conn.execute(
                "SELECT id, attempts FROM jobs WHERE state = ?"
                " AND not_before <= ? AND tenant = ?"
                " ORDER BY submitted_at, rowid LIMIT 1",
                (PENDING, now, tenant),
            ).fetchone()
            if row is None:  # pragma: no cover - tenant scan is in-txn
                return None
            conn.execute(
                "UPDATE jobs SET state = ?, attempts = ?,"
                " claim_seq = claim_seq + 1, lease_owner = ?,"
                " lease_expires = ?, started_at = COALESCE(started_at, ?)"
                " WHERE id = ?",
                (
                    RUNNING,
                    row["attempts"] + 1,
                    worker_id,
                    now + lease_seconds,
                    now,
                    row["id"],
                ),
            )
            got = conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (row["id"],)
            ).fetchone()
        telemetry.count("tenants.claimed")
        return _record_from_row(got)

    def renew(
        self, job_id: str, worker_id: str, lease_seconds: float = 60.0
    ) -> bool:
        """Push the lease deadline forward; False if the lease is gone.

        A False return is the worker's signal to abandon the job
        immediately: either the job was cancelled, or the lease lapsed
        and another worker owns (or will own) it.
        """
        now = self._clock()
        with self._txn() as conn:
            cur = conn.execute(
                "UPDATE jobs SET lease_expires = ? WHERE id = ? AND"
                " state = ? AND lease_owner = ?",
                (now + lease_seconds, job_id, RUNNING, worker_id),
            )
            return cur.rowcount == 1

    # -- completion ---------------------------------------------------
    def finish(
        self, job_id: str, worker_id: str, result: dict | None = None
    ) -> bool:
        """Mark an owned running job ``succeeded``; False if not owned."""
        now = self._clock()
        with self._txn() as conn:
            cur = conn.execute(
                "UPDATE jobs SET state = ?, finished_at = ?, result = ?,"
                " error = NULL, lease_owner = NULL, lease_expires = NULL"
                " WHERE id = ? AND state = ? AND lease_owner = ?",
                (
                    SUCCEEDED,
                    now,
                    json.dumps(result) if result is not None else None,
                    job_id,
                    RUNNING,
                    worker_id,
                ),
            )
            return cur.rowcount == 1

    def fail_attempt(self, job_id: str, worker_id: str, error: str) -> bool:
        """Record a failed attempt: requeue with backoff, or fail for
        good once ``max_attempts`` is spent.  False if not owned."""
        now = self._clock()
        with self._txn() as conn:
            row = conn.execute(
                "SELECT attempts, max_attempts FROM jobs WHERE id = ?"
                " AND state = ? AND lease_owner = ?",
                (job_id, RUNNING, worker_id),
            ).fetchone()
            if row is None:
                return False
            if row["attempts"] >= row["max_attempts"]:
                conn.execute(
                    "UPDATE jobs SET state = ?, finished_at = ?, error = ?,"
                    " lease_owner = NULL, lease_expires = NULL WHERE id = ?",
                    (
                        FAILED,
                        now,
                        f"{error} (attempt {row['attempts']}"
                        f"/{row['max_attempts']})",
                        job_id,
                    ),
                )
            else:
                delay = self._backoff_seconds(job_id, row["attempts"])
                conn.execute(
                    "UPDATE jobs SET state = ?, not_before = ?, error = ?,"
                    " lease_owner = NULL, lease_expires = NULL WHERE id = ?",
                    (
                        PENDING,
                        now + delay,
                        f"{error} (attempt {row['attempts']}"
                        f"/{row['max_attempts']}; retrying after"
                        f" {delay:.3f}s)",
                        job_id,
                    ),
                )
            return True

    def release(self, job_id: str, worker_id: str) -> bool:
        """Gracefully hand an owned running job back to the queue.

        The shutdown path: the attempt is refunded (the work was
        interrupted, not at fault) and the job becomes immediately
        claimable — no backoff gate.  False if not owned.
        """
        with self._txn() as conn:
            cur = conn.execute(
                "UPDATE jobs SET state = ?, attempts = attempts - 1,"
                " not_before = 0, lease_owner = NULL, lease_expires = NULL"
                " WHERE id = ? AND state = ? AND lease_owner = ?",
                (PENDING, job_id, RUNNING, worker_id),
            )
            return cur.rowcount == 1

    # -- operator verbs -----------------------------------------------
    def cancel(self, job_id: str) -> bool:
        """Cancel a non-terminal job.

        A running job's worker discovers the cancellation at its next
        :meth:`renew` (which returns False) and abandons the work; its
        artifacts are never published because ``finish`` is
        owner-and-state guarded.
        """
        now = self._clock()
        with self._txn() as conn:
            cur = conn.execute(
                "UPDATE jobs SET state = ?, finished_at = ?,"
                " lease_owner = NULL, lease_expires = NULL"
                " WHERE id = ? AND state IN (?, ?)",
                (CANCELLED, now, job_id, PENDING, RUNNING),
            )
            return cur.rowcount == 1

    def retry(self, job_id: str) -> bool:
        """Resurrect a failed/cancelled job with a fresh attempt budget."""
        with self._txn() as conn:
            cur = conn.execute(
                "UPDATE jobs SET state = ?, attempts = 0, not_before = 0,"
                " error = NULL, result = NULL, finished_at = NULL"
                " WHERE id = ? AND state IN (?, ?)",
                (PENDING, job_id, FAILED, CANCELLED),
            )
            return cur.rowcount == 1

    # -- inspection ---------------------------------------------------
    def get(self, job_id: str) -> JobRecord | None:
        row = self._conn.execute(
            "SELECT * FROM jobs WHERE id = ?", (job_id,)
        ).fetchone()
        return _record_from_row(row) if row is not None else None

    def list_jobs(
        self, state: str | None = None, tenant: str | None = None
    ) -> list[JobRecord]:
        if state is not None and state not in STATES:
            raise ValueError(
                f"unknown state {state!r}; expected one of {STATES}"
            )
        where: list[str] = []
        params: list[object] = []
        if state is not None:
            where.append("state = ?")
            params.append(state)
        if tenant is not None:
            where.append("tenant = ?")
            params.append(tenant)
        sql = "SELECT * FROM jobs"
        if where:
            sql += " WHERE " + " AND ".join(where)
        sql += " ORDER BY submitted_at, rowid"
        rows = self._conn.execute(sql, params).fetchall()
        return [_record_from_row(r) for r in rows]

    def counts(self, tenant: str | None = None) -> dict[str, int]:
        """Jobs per state (zero-filled for all known states)."""
        out = {state: 0 for state in STATES}
        if tenant is None:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            )
        else:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs WHERE tenant = ?"
                " GROUP BY state",
                (tenant,),
            )
        for row in rows:
            out[row["state"]] = row["n"]
        return out
