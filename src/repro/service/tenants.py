"""Per-tenant fairness primitives: rate limits and claim weights.

Two independent mechanisms keep one tenant from starving the queue:

- **Admission** (:class:`TenantRateLimiter`): a classic token bucket
  per tenant at the submission edge.  A tenant may burst up to
  ``burst`` jobs, then is throttled to ``rate`` jobs/second; the HTTP
  layer turns a rejected acquire into ``429`` with a machine-readable
  ``repro-job/1`` error envelope and a ``tenants.throttled`` counter.
- **Scheduling** (stride weights, consumed by
  :meth:`repro.service.store.JobStore.claim`): each tenant owns a
  *virtual pass* counter persisted in the store's ``tenant_sched``
  table; every claim advances the claimed tenant's pass by
  ``1 / weight``, and claims always go to the runnable tenant with the
  smallest pass.  The result is deterministic weighted round-robin —
  a tenant with weight 2 is claimed twice as often as weight 1 when
  both have work, FIFO order is preserved *within* each tenant, and a
  40-deep backlog from one tenant delays another tenant's first job by
  at most one claim.  State lives in SQLite so any number of worker
  processes share one fair schedule.

Clocks are injectable everywhere (``time.monotonic`` by default) so
tests can step buckets deterministically — the project's REP103 rule
bans wall-clock reads outside telemetry for exactly this reason.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from .spec import DEFAULT_TENANT, validate_tenant

__all__ = [
    "DEFAULT_TENANT",
    "validate_tenant",
    "TokenBucket",
    "TenantRateLimiter",
    "parse_tenant_weights",
    "tenant_weight",
]


class TokenBucket:
    """Deterministic token bucket (``rate`` tokens/s, ``burst`` cap).

    ``try_acquire`` never blocks: it refills lazily from the elapsed
    clock time, then either spends a token or reports failure.  A
    ``rate`` of 0 disables refill (only the initial burst is ever
    admitted); callers wanting "no limit" simply do not construct one.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate < 0 or burst <= 0:
            raise ValueError(
                f"need rate >= 0 and burst > 0, got {rate}/{burst}"
            )
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._last)
        self._last = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    def try_acquire(self, n: float = 1.0) -> bool:
        """Spend ``n`` tokens if available; never blocks."""
        self._refill(self._clock())
        if self._tokens >= n:
            self._tokens -= n
            return True
        return False

    @property
    def tokens(self) -> float:
        """Current balance (after a lazy refill) — for tests/metrics."""
        self._refill(self._clock())
        return self._tokens


class TenantRateLimiter:
    """One token bucket per tenant, created on first sight — bounded.

    Thread-safe: the HTTP server calls :meth:`allow` from handler
    threads.  Unknown tenants inherit the default ``rate``/``burst``;
    per-tenant overrides come from ``overrides`` as
    ``{tenant: (rate, burst)}``.

    The bucket table is capped at ``max_buckets`` (every distinct
    tenant name allocates an entry, so an unbounded table is a trivial
    memory DoS on the admission edge).  Eviction prefers **full**
    buckets in least-recently-used order — a full bucket is stateless,
    so dropping and later recreating it is behaviorally invisible.
    Only when every bucket is mid-refill does LRU eviction touch a
    non-full one; that tenant's next request restarts at a full burst,
    a bounded forgiveness accepted in exchange for bounded memory.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        overrides: dict[str, tuple[float, float]] | None = None,
        clock: Callable[[], float] = time.monotonic,
        max_buckets: int = 4096,
    ) -> None:
        if max_buckets < 1:
            raise ValueError(
                f"max_buckets must be >= 1, got {max_buckets}"
            )
        self.rate = rate
        self.burst = burst
        self.max_buckets = max_buckets
        self._overrides = dict(overrides or {})
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()
        self._evictions = 0

    @property
    def n_buckets(self) -> int:
        """Live bucket count (the ``tenants.buckets`` gauge)."""
        with self._lock:
            return len(self._buckets)

    @property
    def evictions(self) -> int:
        """Buckets evicted so far (full + LRU)."""
        with self._lock:
            return self._evictions

    def allow(self, tenant: str) -> bool:
        validate_tenant(tenant)
        with self._lock:
            # dict preserves insertion order: pop + reinsert keeps the
            # table in LRU order with the newest use at the end.
            bucket = self._buckets.pop(tenant, None)
            if bucket is None:
                rate, burst = self._overrides.get(
                    tenant, (self.rate, self.burst)
                )
                bucket = TokenBucket(rate, burst, clock=self._clock)
            self._buckets[tenant] = bucket
            ok = bucket.try_acquire()
            if len(self._buckets) > self.max_buckets:
                self._evict_locked()
            return ok

    def _evict_locked(self) -> None:
        excess = len(self._buckets) - self.max_buckets
        if excess <= 0:
            return
        # Pass 1: full buckets are free to drop (recreation restores
        # identical state), oldest use first.
        for tenant in [
            t for t, b in self._buckets.items() if b.tokens >= b.burst
        ][:excess]:
            del self._buckets[tenant]
            self._evictions += 1
        # Pass 2: still over the cap — drop the least recently used
        # regardless (the tenant just served sits safely at the end).
        excess = len(self._buckets) - self.max_buckets
        for tenant in list(self._buckets)[:excess]:
            del self._buckets[tenant]
            self._evictions += 1


def parse_tenant_weights(pairs: list[str]) -> dict[str, float]:
    """Parse repeated ``NAME=WEIGHT`` CLI flags into a weight map."""
    weights: dict[str, float] = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep or not name:
            raise ValueError(
                f"tenant weight must be NAME=WEIGHT, got {pair!r}"
            )
        validate_tenant(name)
        try:
            weight = float(value)
        except ValueError:
            raise ValueError(
                f"tenant weight for {name!r} must be a number, "
                f"got {value!r}"
            ) from None
        if not weight > 0:
            raise ValueError(
                f"tenant weight for {name!r} must be > 0, got {weight}"
            )
        weights[name] = weight
    return weights


def tenant_weight(weights: dict[str, float] | None, tenant: str) -> float:
    """A tenant's claim weight (1.0 unless configured otherwise)."""
    if not weights:
        return 1.0
    return float(weights.get(tenant, 1.0))
