"""Durable correction job service.

A crash-safe way to run correction work: jobs live in a WAL-mode
SQLite store (:mod:`~repro.service.store`), workers claim them under
renewable leases (:mod:`~repro.service.worker`), execute them through
the same Corrector/streaming engines as ``repro correct``
(:mod:`~repro.service.runner`), and publish artifacts atomically.  A
worker killed at *any* instant — ``kill -9`` included — loses at most
the work since its last durable checkpoint; the job is reclaimed
after its lease lapses and the retry produces byte-identical output.

The service fronts three layers of API:

- **wire** — versioned ``repro-job/1`` JSON envelopes
  (:mod:`~repro.service.spec`), validated on both ends;
- **HTTP** — ``python -m repro serve-http``
  (:mod:`~repro.service.http`) serves the envelopes at ``/v1/...``
  with per-tenant rate limiting and embedded workers sharing a warm
  :class:`~repro.service.pool.SpectrumPool`;
- **client** — :class:`~repro.service.client.JobsClient` runs the
  same verbs over HTTP or in-process, which is what ``python -m repro
  jobs`` (:mod:`~repro.service.cli`) rides on.

CLI surfaces: ``python -m repro serve`` (:mod:`~repro.service.serve`),
``python -m repro serve-http``, ``python -m repro jobs``, and
``python -m repro validate-job``.  See ``docs/service.md`` for the
state machine, HTTP API, and operational guide.
"""

from .client import HTTPTransport, Job, JobsClient, LocalTransport, \
    ServiceError, TransportError
from .pool import PoolEntry, SpectrumPool
from .spec import DEFAULT_TENANT, JOB_SCHEMA_VERSION, JobSpec
from .store import (
    CANCELLED,
    FAILED,
    PENDING,
    RUNNING,
    STATES,
    SUCCEEDED,
    JobRecord,
    JobStore,
    LeaseLost,
)
from .tenants import TenantRateLimiter, TokenBucket
from .worker import DB_NAME, ServeWorker, SpoolError, open_spool_store

__all__ = [
    "JobSpec",
    "JobStore",
    "JobRecord",
    "LeaseLost",
    "ServeWorker",
    "SpoolError",
    "open_spool_store",
    "DB_NAME",
    "STATES",
    "PENDING",
    "RUNNING",
    "SUCCEEDED",
    "FAILED",
    "CANCELLED",
    "DEFAULT_TENANT",
    "JOB_SCHEMA_VERSION",
    "Job",
    "JobsClient",
    "HTTPTransport",
    "LocalTransport",
    "ServiceError",
    "TransportError",
    "SpectrumPool",
    "PoolEntry",
    "TokenBucket",
    "TenantRateLimiter",
]
