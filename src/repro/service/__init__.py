"""Durable correction job service.

A crash-safe way to run correction work: jobs live in a WAL-mode
SQLite store (:mod:`~repro.service.store`), workers claim them under
renewable leases (:mod:`~repro.service.worker`), execute them through
the same Corrector/streaming engines as ``repro correct``
(:mod:`~repro.service.runner`), and publish artifacts atomically.  A
worker killed at *any* instant — ``kill -9`` included — loses at most
the work since its last durable checkpoint; the job is reclaimed
after its lease lapses and the retry produces byte-identical output.

CLI surfaces: ``python -m repro serve`` (:mod:`~repro.service.serve`)
and ``python -m repro jobs`` (:mod:`~repro.service.cli`).  See
``docs/service.md`` for the state machine and operational guide.
"""

from .spec import JobSpec
from .store import (
    CANCELLED,
    FAILED,
    PENDING,
    RUNNING,
    STATES,
    SUCCEEDED,
    JobRecord,
    JobStore,
    LeaseLost,
)
from .worker import DB_NAME, ServeWorker

__all__ = [
    "JobSpec",
    "JobStore",
    "JobRecord",
    "LeaseLost",
    "ServeWorker",
    "DB_NAME",
    "STATES",
    "PENDING",
    "RUNNING",
    "SUCCEEDED",
    "FAILED",
    "CANCELLED",
]
