"""``repro serve`` — run a correction worker over a spool directory.

Start one (or several — they coordinate through the spool's SQLite
store) worker processes::

    python -m repro serve --spool spool/
    python -m repro serve --spool spool/ --idle-exit      # drain & stop
    python -m repro serve --spool spool/ --max-jobs 1     # one job

Submit and inspect work with ``python -m repro jobs`` (see
:mod:`repro.service.cli`).  SIGTERM/SIGINT stop the worker gracefully:
it finishes the chunk in flight, checkpoints streaming jobs, releases
its lease, and exits 0.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .worker import ServeWorker


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-serve",
        description="Durable correction job worker (lease-based claiming).",
    )
    p.add_argument(
        "--spool", type=Path, required=True,
        help="spool directory holding the job store and per-job work dirs",
    )
    p.add_argument(
        "--worker-id", default=None,
        help="stable worker identity (default: <hostname>-<pid>)",
    )
    p.add_argument(
        "--lease-seconds", type=float, default=30.0,
        help="claim lease duration; heartbeats renew at a third of this",
    )
    p.add_argument(
        "--poll-seconds", type=float, default=0.2,
        help="idle sleep between empty claim attempts",
    )
    p.add_argument(
        "--max-jobs", type=int, default=None,
        help="exit after completing this many jobs",
    )
    p.add_argument(
        "--idle-exit", action="store_true",
        help="exit once no pending or running jobs remain "
             "(instead of polling forever)",
    )
    return p


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    args = build_parser().parse_args(argv)
    worker = ServeWorker(
        args.spool,
        worker_id=args.worker_id,
        lease_seconds=args.lease_seconds,
        poll_seconds=args.poll_seconds,
    )
    try:
        return worker.run(max_jobs=args.max_jobs, idle_exit=args.idle_exit)
    finally:
        worker.store.close()


if __name__ == "__main__":
    raise SystemExit(main())
