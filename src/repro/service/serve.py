"""``repro serve`` — run a correction worker over a spool directory.

Start one (or several — they coordinate through the spool's SQLite
store) worker processes::

    python -m repro serve --spool spool/
    python -m repro serve --spool spool/ --idle-exit      # drain & stop
    python -m repro serve --spool spool/ --max-jobs 1     # one job

Submit and inspect work with ``python -m repro jobs`` (see
:mod:`repro.service.cli`).  SIGTERM/SIGINT stop the worker gracefully:
it finishes the chunk in flight, checkpoints streaming jobs, releases
its lease, and exits 0.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..tools.common import memory_size
from .pool import SpectrumPool
from .tenants import parse_tenant_weights
from .worker import ServeWorker, SpoolError, open_spool_store


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-serve",
        description="Durable correction job worker (lease-based claiming).",
    )
    p.add_argument(
        "--spool", type=Path, required=True,
        help="spool directory holding the job store and per-job work dirs",
    )
    p.add_argument(
        "--worker-id", default=None,
        help="stable worker identity (default: <hostname>-<pid>)",
    )
    p.add_argument(
        "--lease-seconds", type=float, default=30.0,
        help="claim lease duration; heartbeats renew at a third of this",
    )
    p.add_argument(
        "--poll-seconds", type=float, default=0.2,
        help="idle sleep between empty claim attempts",
    )
    p.add_argument(
        "--max-jobs", type=int, default=None,
        help="exit after completing this many jobs",
    )
    p.add_argument(
        "--idle-exit", action="store_true",
        help="exit once no pending or running jobs remain "
             "(instead of polling forever)",
    )
    add_fairness_flags(p)
    add_pool_flags(p)
    return p


def add_fairness_flags(p: argparse.ArgumentParser) -> None:
    """Tenant-fairness flags shared by ``serve`` and ``serve-http``."""
    g = p.add_argument_group("tenant fairness")
    g.add_argument(
        "--tenant-weight", action="append", default=[],
        metavar="NAME=WEIGHT",
        help="claim weight for a tenant (repeatable; default 1.0 — "
             "weight 2 tenants are claimed twice as often)",
    )


def add_pool_flags(p: argparse.ArgumentParser) -> None:
    """Warm-spectrum-pool flags shared by ``serve`` and ``serve-http``."""
    g = p.add_argument_group("warm spectrum pool")
    g.add_argument(
        "--pool-bytes", type=memory_size, default=1 << 30, metavar="SIZE",
        help="byte budget for cached fitted spectra (default 1G)",
    )
    g.add_argument(
        "--pool-entries", type=int, default=8,
        help="max cached fitted correctors (default 8)",
    )
    g.add_argument(
        "--no-pool", action="store_true",
        help="disable warm-spectrum caching (every job fits fresh)",
    )


def pool_from_args(args: argparse.Namespace) -> SpectrumPool:
    if args.no_pool:
        return SpectrumPool(max_bytes=0, max_entries=0)
    return SpectrumPool(
        max_bytes=args.pool_bytes, max_entries=args.pool_entries
    )


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    args = build_parser().parse_args(argv)
    try:
        weights = parse_tenant_weights(args.tenant_weight)
        store = open_spool_store(args.spool, tenant_weights=weights)
    except (SpoolError, ValueError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    worker = ServeWorker(
        args.spool,
        store=store,
        worker_id=args.worker_id,
        lease_seconds=args.lease_seconds,
        poll_seconds=args.poll_seconds,
        pool=pool_from_args(args),
    )
    try:
        return worker.run(max_jobs=args.max_jobs, idle_exit=args.idle_exit)
    finally:
        worker.store.close()


if __name__ == "__main__":
    raise SystemExit(main())
