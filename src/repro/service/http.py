"""``repro serve-http`` — the stdlib HTTP/JSON front end of the service.

One process is a complete deployment: a :class:`ThreadingHTTPServer`
answering the ``/v1`` API plus (optionally) embedded worker threads
claiming and executing jobs against the same spool — all sharing one
warm :class:`~repro.service.pool.SpectrumPool`.  Scale out by running
more ``serve-http`` or plain ``serve`` processes on the spool host;
they coordinate through the SQLite store exactly as before.

Endpoints (every body is a versioned ``repro-job/1`` envelope, see
:mod:`repro.service.spec`)::

    POST   /v1/jobs               submit   (429 when rate-limited)
    GET    /v1/jobs               list     (?state=...&tenant=...)
    GET    /v1/jobs/{id}          status
    GET    /v1/jobs/{id}/result   corrected FASTQ (streamed bytes)
    POST   /v1/jobs/{id}/retry    requeue a failed/cancelled job
    DELETE /v1/jobs/{id}          cancel
    GET    /v1/healthz            liveness + per-state job counts
    GET    /v1/metrics            telemetry registry dump

The transport-independent half lives in :class:`ServiceAPI`: every
verb validates its request envelope, executes one store transaction,
and returns ``(status, envelope)``.  The HTTP handler and the local
(in-process) client transport both call it, so wire behavior cannot
drift between "over the network" and "same process" — the layering
the ISSUE's client satellite requires.

Crash story: the server holds **no job state** — SIGKILL it mid-job
and the store's leases, checkpoints, and claim fencing recover exactly
as for ``repro serve`` workers; a restarted server answers polls for
the same job ids from the same spool.  Clients retry connection
refusals with backoff (:mod:`repro.service.client`), so a restart is
invisible to a polling submitter.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Iterator
from urllib.parse import parse_qs, unquote, urlparse

from ..io.atomic import atomic_write_text
from ..telemetry.metrics import MetricsRegistry
from . import spec as wire
from .pool import SpectrumPool
from .serve import add_fairness_flags, add_pool_flags, pool_from_args
from .spec import DEFAULT_TENANT, JobSpec
from .store import STATES, SUCCEEDED, JobStore
from .tenants import TenantRateLimiter, parse_tenant_weights
from .worker import ServeWorker, SpoolError, default_worker_id, \
    open_spool_store

__all__ = ["ApiError", "ServiceAPI", "JobsHTTPServer", "main"]


class ApiError(Exception):
    """A verb failed in a way the wire schema can express."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message

    def envelope(self) -> dict:
        return wire.error_envelope(self.code, self.message)


class ServiceAPI:
    """Transport-independent service verbs over one spool.

    Thread-safe: request threads borrow a :class:`JobStore` from a
    small free-list (one SQLite connection is never used by two
    threads at once; WAL + IMMEDIATE transactions coordinate the
    concurrent borrowers and any external workers).  Registry counters
    (``tenants.submitted/throttled/rejected``, ``http.requests``) are
    process-wide and surface on ``GET /v1/metrics`` together with live
    store counts and warm-pool occupancy.
    """

    def __init__(
        self,
        spool: str | Path,
        tenant_weights: dict[str, float] | None = None,
        rate_limiter: TenantRateLimiter | None = None,
        registry: MetricsRegistry | None = None,
        pool: SpectrumPool | None = None,
    ) -> None:
        self.spool = Path(spool)
        self._weights = dict(tenant_weights or {})
        self.rate_limiter = rate_limiter
        self.registry = registry if registry is not None else MetricsRegistry()
        self.pool = pool
        self._free: list[JobStore] = []
        self._all: list[JobStore] = []
        self._stores_lock = threading.Lock()
        # Open (and thereby create) the spool eagerly so an unusable
        # path fails at startup with a clear SpoolError, not on the
        # first request.
        with self._store():
            pass

    @contextmanager
    def _store(self) -> Iterator[JobStore]:
        """Borrow a store for one verb (exclusive while borrowed)."""
        with self._stores_lock:
            store = self._free.pop() if self._free else None
        if store is None:
            store = open_spool_store(
                self.spool, tenant_weights=self._weights
            )
            with self._stores_lock:
                self._all.append(store)
        try:
            yield store
        finally:
            with self._stores_lock:
                self._free.append(store)

    def close(self) -> None:
        with self._stores_lock:
            stores, self._all = self._all, []
            self._free = []
        for store in stores:
            store.close()

    # -- verbs --------------------------------------------------------
    def submit(self, document: object) -> tuple[int, dict]:
        problems = wire.validate_envelope_dict(document)
        if not problems and "submit" not in document:  # type: ignore[operator]
            problems = ["expected a submit envelope"]
        if problems:
            raise ApiError(400, "invalid-request", "; ".join(problems))
        sub = document["submit"]  # type: ignore[index]
        tenant = sub.get("tenant", DEFAULT_TENANT)
        if self.rate_limiter is not None \
                and not self.rate_limiter.allow(tenant):
            self.registry.incr("tenants.throttled")
            raise ApiError(
                429, "rate-limited",
                f"tenant {tenant!r} is over its submission rate; "
                "retry later",
            )
        spec = JobSpec.from_dict(sub["spec"])
        with self._store() as store:
            try:
                job_id = store.submit(
                    spec,
                    max_attempts=sub.get("max_attempts", 3),
                    job_id=sub.get("job_id"),
                    tenant=tenant,
                )
            except ValueError as e:
                self.registry.incr("tenants.rejected")
                raise ApiError(409, "conflict", str(e)) from None
            self.registry.incr("tenants.submitted")
            record = store.get(job_id)
        assert record is not None
        return 201, wire.job_envelope(record.as_dict())

    def get(self, job_id: str) -> tuple[int, dict]:
        with self._store() as store:
            record = store.get(job_id)
        if record is None:
            raise ApiError(404, "not-found", f"no such job: {job_id}")
        return 200, wire.job_envelope(record.as_dict())

    def list(
        self, state: str | None = None, tenant: str | None = None
    ) -> tuple[int, dict]:
        if state is not None and state not in STATES:
            raise ApiError(
                400, "invalid-request",
                f"unknown state {state!r}; expected one of {STATES}",
            )
        with self._store() as store:
            records = store.list_jobs(state=state, tenant=tenant)
            counts = store.counts()
        return 200, wire.jobs_envelope(
            [r.as_dict() for r in records], counts
        )

    def cancel(self, job_id: str) -> tuple[int, dict]:
        with self._store() as store:
            if not store.cancel(job_id):
                if store.get(job_id) is None:
                    raise ApiError(
                        404, "not-found", f"no such job: {job_id}"
                    )
                raise ApiError(
                    409, "not-cancellable",
                    f"{job_id}: not cancellable (must be "
                    "pending/running)",
                )
            record = store.get(job_id)
        assert record is not None
        return 200, wire.job_envelope(record.as_dict())

    def retry(self, job_id: str) -> tuple[int, dict]:
        with self._store() as store:
            if not store.retry(job_id):
                if store.get(job_id) is None:
                    raise ApiError(
                        404, "not-found", f"no such job: {job_id}"
                    )
                raise ApiError(
                    409, "not-retryable",
                    f"{job_id}: not retryable (must be "
                    "failed/cancelled)",
                )
            record = store.get(job_id)
        assert record is not None
        return 200, wire.job_envelope(record.as_dict())

    def result_path(self, job_id: str) -> Path:
        """Path of a succeeded job's corrected FASTQ (for streaming)."""
        with self._store() as store:
            record = store.get(job_id)
        if record is None:
            raise ApiError(404, "not-found", f"no such job: {job_id}")
        if record.state != SUCCEEDED:
            raise ApiError(
                409, "not-ready",
                f"{job_id} is {record.state}, result available once "
                "succeeded",
            )
        path = Path(record.spec.output)
        if not path.is_file():
            raise ApiError(
                404, "output-missing",
                f"{job_id} succeeded but its output {path} is gone",
            )
        return path

    def health(self) -> tuple[int, dict]:
        with self._store() as store:
            counts = store.counts()
        return 200, wire.health_envelope(counts)

    def metrics(self) -> tuple[int, dict]:
        snap = self.registry.snapshot()
        gauges = dict(snap["gauges"])
        with self._store() as store:
            counts = store.counts()
        for state, n in counts.items():
            gauges[f"jobs_{state}"] = float(n)
        if self.pool is not None:
            for name, value in self.pool.stats().items():
                gauges[f"pool_{name}"] = float(value)
        if self.rate_limiter is not None:
            gauges["tenants.buckets"] = float(self.rate_limiter.n_buckets)
            gauges["tenants.bucket_evictions"] = float(
                self.rate_limiter.evictions
            )
        return 200, wire.metrics_envelope(
            {"counters": snap["counters"], "gauges": gauges}
        )


class JobsHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`ServiceAPI`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], api: ServiceAPI) -> None:
        super().__init__(address, JobsHTTPHandler)
        self.api = api


class JobsHTTPHandler(BaseHTTPRequestHandler):
    server_version = "repro-serve-http/1"
    protocol_version = "HTTP/1.1"
    #: Streaming block size for result bodies.
    BLOCK = 1 << 20

    # Quiet by default: one counter instead of a per-request log line
    # (operators scrape /v1/metrics).
    def log_message(self, format: str, *args: object) -> None:
        pass

    @property
    def api(self) -> ServiceAPI:
        return self.server.api  # type: ignore[attr-defined]

    # -- plumbing -----------------------------------------------------
    def _send_json(self, status: int, envelope: dict) -> None:
        body = json.dumps(envelope, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_file(self, path: Path) -> None:
        size = path.stat().st_size
        self.send_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(size))
        self.end_headers()
        with open(path, "rb") as fh:
            while True:
                block = fh.read(self.BLOCK)
                if not block:
                    break
                self.wfile.write(block)

    def _read_json(self) -> object:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise ApiError(
                400, "invalid-request", "bad Content-Length"
            ) from None
        raw = self.rfile.read(length) if length else b""
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise ApiError(
                400, "invalid-json", "request body is not valid JSON"
            ) from None

    def _segments(self) -> tuple[list[str], dict[str, str]]:
        parsed = urlparse(self.path)
        # Split *before* unquoting: a %2F inside a job id must stay
        # part of its segment, not become a path separator.
        segments = [unquote(s) for s in parsed.path.split("/") if s]
        query = {
            key: values[-1]
            for key, values in parse_qs(parsed.query).items()
        }
        return segments, query

    def _dispatch(self, method: str) -> None:
        self.api.registry.incr("http.requests")
        try:
            segments, query = self._segments()
            if not segments or segments[0] != "v1":
                raise ApiError(
                    404, "not-found", f"unknown path {self.path!r}"
                )
            route = segments[1:]
            if method == "GET" and route == ["healthz"]:
                self._send_json(*self.api.health())
            elif method == "GET" and route == ["metrics"]:
                self._send_json(*self.api.metrics())
            elif method == "GET" and route == ["jobs"]:
                self._send_json(*self.api.list(
                    state=query.get("state"), tenant=query.get("tenant")
                ))
            elif method == "GET" and len(route) == 2 \
                    and route[0] == "jobs":
                self._send_json(*self.api.get(route[1]))
            elif method == "GET" and len(route) == 3 \
                    and route[0] == "jobs" and route[2] == "result":
                self._send_file(self.api.result_path(route[1]))
            elif method == "POST" and route == ["jobs"]:
                self._send_json(*self.api.submit(self._read_json()))
            elif method == "POST" and len(route) == 3 \
                    and route[0] == "jobs" and route[2] == "retry":
                self._send_json(*self.api.retry(route[1]))
            elif method == "DELETE" and len(route) == 2 \
                    and route[0] == "jobs":
                self._send_json(*self.api.cancel(route[1]))
            else:
                raise ApiError(
                    404, "not-found",
                    f"no route for {method} {self.path!r}",
                )
        except ApiError as e:
            self.api.registry.incr("http.errors")
            self._send_json(e.status, e.envelope())
        except BrokenPipeError:
            # Client went away mid-response; nothing to answer.
            self.api.registry.incr("http.broken_pipes")
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as e:
            self.api.registry.incr("http.errors")
            self._send_json(
                500,
                wire.error_envelope(
                    "internal", f"{type(e).__name__}: {e}"
                ),
            )

    # -- HTTP verbs ---------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-serve-http",
        description="HTTP/JSON job API (plus embedded workers) over a "
                    "correction spool.",
    )
    p.add_argument(
        "--spool", type=Path, required=True,
        help="spool directory holding the job store (created durably "
             "if missing)",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument(
        "--port", type=int, default=8765,
        help="bind port (default 8765; 0 picks a free port — see "
             "--ready-file)",
    )
    p.add_argument(
        "--serve-workers", type=int, default=1, metavar="N",
        help="embedded worker threads executing jobs in this process "
             "(0: API only, pair with separate `repro serve` workers)",
    )
    p.add_argument(
        "--lease-seconds", type=float, default=30.0,
        help="claim lease duration for embedded workers",
    )
    p.add_argument(
        "--poll-seconds", type=float, default=0.2,
        help="embedded workers' idle sleep between empty claims",
    )
    p.add_argument(
        "--ready-file", type=Path, default=None,
        help="atomically write the base URL here once listening "
             "(scripts wait on this to learn an ephemeral port)",
    )
    g = p.add_argument_group("rate limiting")
    g.add_argument(
        "--rate", type=float, default=None, metavar="PER_SECOND",
        help="token-bucket refill per tenant for submissions "
             "(default: no rate limit)",
    )
    g.add_argument(
        "--burst", type=float, default=10.0,
        help="token-bucket burst per tenant (default 10)",
    )
    add_fairness_flags(p)
    add_pool_flags(p)
    return p


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    args = build_parser().parse_args(argv)
    try:
        weights = parse_tenant_weights(args.tenant_weight)
    except ValueError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    pool = pool_from_args(args)
    limiter = None
    if args.rate is not None:
        limiter = TenantRateLimiter(args.rate, args.burst)
    try:
        api = ServiceAPI(
            args.spool,
            tenant_weights=weights,
            rate_limiter=limiter,
            pool=pool,
        )
    except SpoolError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    server = JobsHTTPServer((args.host, args.port), api)
    host, port = server.server_address[:2]

    workers: list[ServeWorker] = []
    threads: list[threading.Thread] = []
    base_id = default_worker_id()
    for i in range(max(0, args.serve_workers)):
        worker = ServeWorker(
            args.spool,
            store=open_spool_store(args.spool, tenant_weights=weights),
            worker_id=f"{base_id}-wt{i}",
            lease_seconds=args.lease_seconds,
            poll_seconds=args.poll_seconds,
            pool=pool,
        )
        thread = threading.Thread(
            target=worker.run, name=f"serve-worker-{i}", daemon=True
        )
        workers.append(worker)
        threads.append(thread)
        thread.start()

    def request_shutdown(signum: int, frame: object) -> None:
        # serve_forever() runs on this (main) thread; shutdown() blocks
        # until its loop exits, so it must run elsewhere.
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {
        signum: signal.signal(signum, request_shutdown)
        for signum in (signal.SIGTERM, signal.SIGINT)
    }
    url = f"http://{host}:{port}"
    print(
        f"[serve-http] listening on {url} "
        f"({len(workers)} embedded worker(s), spool {args.spool})",
        flush=True,
    )
    if args.ready_file is not None:
        atomic_write_text(args.ready_file, url + "\n")
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        server.server_close()
        for worker in workers:
            worker.stop()
        for thread in threads:
            thread.join(timeout=30.0)
        for worker in workers:
            worker.store.close()
        api.close()
    print("[serve-http] exiting", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
