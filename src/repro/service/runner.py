"""Execute one claimed correction job, crash-safely.

The runner is the bridge between the durable job store and the
correction engines: it takes a claimed :class:`~repro.service.store.
JobRecord`, runs its :class:`~repro.service.spec.JobSpec` through the
:mod:`repro.core.api` registry (batch) or the streamed three-pass
pipeline (``stream=True``, mirroring ``repro correct --stream``), and
returns the result payload recorded on the job row.

Crash-safety contract (at-least-once execution, exactly-once output):

- **Batch jobs** publish their one artifact through
  :func:`repro.io.fastq.write_fastq`'s atomic path — a kill at any
  instant leaves either no output or the complete output, and a rerun
  rewrites identical bytes (correction is deterministic).
- **Stream jobs** write corrected blocks to a *partial* file inside
  the job's work directory, fsync it, then atomically record a
  checkpoint (``reads done``, durable byte offset, running counters,
  spec+input fingerprint).  A restarted attempt recomputes phase 1
  deterministically, truncates the partial to the last durable
  offset, skips the already-corrected reads, and continues — the
  final :func:`~repro.io.atomic.publish_file` rename yields bytes
  identical to an uninterrupted run.  A checkpoint whose fingerprint
  does not match the current spec/input is ignored, never spliced.

Scripted kill points (``REPRO_FAULT_POINTS``, see
:mod:`repro.mapreduce.faults`) pepper the hot path so the chaos suite
can SIGKILL a real worker at every interesting instant:
``service.claimed``, ``service.fitted``, ``service.block``,
``service.before_commit`` — plus ``service.before_finish`` hit by the
worker between artifact commit and the store's ``finish`` transition.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable

from .. import telemetry
from ..core.api import build_corrector, supports_chunking
from ..io.atomic import atomic_write_json, publish_file
from ..io.fastq import read_fastq, read_fastq_chunks, write_fastq
from ..mapreduce.faults import hit_fault_point
from .spec import JobSpec
from .store import JobRecord

#: Name of the crash-safe partial output inside a job's work dir.
PARTIAL_NAME = "partial.fastq"
#: Name of the atomic resume checkpoint next to the partial.
CHECKPOINT_NAME = "checkpoint.json"


def job_workdir(spool: str | Path, job_id: str) -> Path:
    """Per-job scratch directory under the spool (partial + checkpoint)."""
    return Path(spool) / "work" / job_id


def execute_job(
    record: JobRecord,
    workdir: str | Path,
    tick: Callable[[], None] | None = None,
) -> dict:
    """Run one claimed job to completion; returns the result payload.

    ``tick`` is the worker's heartbeat hook, called between blocks and
    phases: it renews the store lease and is the single place where
    :class:`~repro.service.store.LeaseLost` (abandon now, another
    worker owns the job) or ``KeyboardInterrupt`` (graceful shutdown;
    the last checkpoint is already durable) may be raised.
    """
    spec = record.spec
    spec.validate()
    hit_fault_point("service.claimed")
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    tel = None
    try:
        with telemetry.session("serve") as tel:
            telemetry.gauge("job_attempt", record.attempts)
            if spec.stream:
                result = _run_stream_job(spec, workdir, tick)
            else:
                result = _run_batch_job(spec, tick)
    finally:
        if tel is not None and spec.report:
            tel.report().write(spec.report)
    return result


def _tick(tick: Callable[[], None] | None) -> None:
    if tick is not None:
        tick()


def _run_batch_job(spec: JobSpec, tick: Callable[[], None] | None) -> dict:
    """In-memory correction; the single output write is atomic."""
    from ..parallel import correct_in_parallel

    error_counts: dict = {}
    with telemetry.span("read_input", path=spec.input):
        reads = read_fastq(
            spec.input, on_error=spec.on_error, error_counts=error_counts
        )
    telemetry.gauge("reads_input", reads.n_reads)
    _tick(tick)
    with telemetry.span("fit", method=spec.method):
        corrector = build_corrector(
            spec.method, reads, k=spec.k, genome_length=spec.genome_length
        )
    hit_fault_point("service.fitted")
    _tick(tick)
    with telemetry.span("correct", method=spec.method):
        if supports_chunking(corrector):
            report = correct_in_parallel(
                corrector,
                reads,
                workers=spec.workers,
                chunk_size=spec.chunk_size,
            )
            corrected = report.reads
        else:
            corrected = corrector.correct(reads)
    _tick(tick)
    n_changed = int((corrected.codes != reads.codes).sum())
    hit_fault_point("service.before_commit")
    with telemetry.span("write_output", path=spec.output):
        write_fastq(corrected, spec.output)
    telemetry.gauge("bases_changed", n_changed)
    return {
        "reads": int(reads.n_reads),
        "bases_changed": n_changed,
        "resumed_reads": 0,
        **{k: int(v) for k, v in error_counts.items()},
    }


def _load_checkpoint(workdir: Path, fingerprint: str) -> dict | None:
    """The durable resume point, or ``None`` to start from scratch.

    Invalid checkpoints (missing partial, stale fingerprint, offset
    beyond the durable bytes) are discarded, not repaired: correctness
    comes from recomputing, never from splicing mismatched state.
    """
    ckpt_path = workdir / CHECKPOINT_NAME
    partial = workdir / PARTIAL_NAME
    if not ckpt_path.is_file() or not partial.is_file():
        return None
    try:
        with open(ckpt_path, "rt", encoding="utf-8") as fh:
            ckpt = json.load(fh)
    except (OSError, ValueError):
        return None
    if not isinstance(ckpt, dict) or ckpt.get("fingerprint") != fingerprint:
        return None
    offset = ckpt.get("byte_offset", 0)
    if not isinstance(offset, int) or offset < 0:
        return None
    if partial.stat().st_size < offset:
        return None
    return ckpt


def _run_stream_job(
    spec: JobSpec, workdir: Path, tick: Callable[[], None] | None
) -> dict:
    """Out-of-core correction with block-granular crash recovery.

    Mirrors ``repro correct --stream`` (pass A statistics, pass B
    phase-1 structures, pass C chunked correction) but stages output
    through ``workdir/partial.fastq`` with an atomic checkpoint after
    every durable block, then publishes with one rename.
    """
    import numpy as np

    from ..core.reptile import ReptileCorrector
    from ..core.reptile.params import (
        add_histograms,
        quality_histogram,
        select_parameters_streaming,
    )
    from ..kmer.streaming import (
        SpectrumAccumulator,
        TileAccumulator,
        build_from_chunks,
    )
    from ..parallel import correct_stream

    block_reads = spec.chunk_size * spec.workers
    fingerprint = spec.fingerprint()
    partial = workdir / PARTIAL_NAME
    ckpt_path = workdir / CHECKPOINT_NAME

    def chunks(error_counts=None):
        return read_fastq_chunks(
            spec.input,
            block_reads,
            on_error=spec.on_error,
            error_counts=error_counts,
        )

    # Pass A — streamed parameter statistics (always recomputed: it is
    # deterministic and cheap relative to keeping it crash-safe).
    qhist = np.zeros(0, dtype=np.int64)
    n_reads = 0
    with telemetry.span("stream.scan", path=spec.input):
        for chunk in chunks():
            qhist = add_histograms(qhist, quality_histogram(chunk))
            n_reads += chunk.n_reads
    telemetry.gauge("reads_input", n_reads)
    _tick(tick)

    # Pass B — phase-1 spectrum/tiles, same select-then-replace
    # semantics as the CLI streaming path.
    sel_params = select_parameters_streaming(
        qhist, np.zeros(0, dtype=np.int64),
        genome_length_estimate=spec.genome_length,
    )
    k_final = spec.k if spec.k is not None else sel_params.k
    with telemetry.span("fit", method=spec.method, k=k_final):
        spec_acc = SpectrumAccumulator(
            k_final, max_memory_bytes=spec.max_memory, tmp_dir=workdir
        )
        accs = [spec_acc]
        sel_tiles_acc = TileAccumulator(
            sel_params.k,
            overlap=sel_params.overlap,
            quality_cutoff=sel_params.qc,
            max_memory_bytes=spec.max_memory,
            tmp_dir=workdir,
        )
        accs.append(sel_tiles_acc)
        final_tiles_acc = sel_tiles_acc
        if k_final != sel_params.k:
            final_tiles_acc = TileAccumulator(
                k_final,
                overlap=sel_params.overlap,
                quality_cutoff=sel_params.qc,
                max_memory_bytes=spec.max_memory,
                tmp_dir=workdir,
            )
            accs.append(final_tiles_acc)
        with telemetry.span("stream.phase1"):
            results = build_from_chunks(chunks(), accs)
        spectrum = results[0]
        sel_tiles = results[1]
        tiles = results[accs.index(final_tiles_acc)]
        params = select_parameters_streaming(
            qhist, sel_tiles.og, genome_length_estimate=spec.genome_length
        )
        if spec.k is not None:
            from dataclasses import replace

            params = replace(params, k=spec.k)
        corrector = ReptileCorrector(
            params=params, spectrum=spectrum, tiles=tiles
        )
    hit_fault_point("service.fitted")
    _tick(tick)

    # Pass C — chunked correction resuming from the last durable block.
    ckpt = _load_checkpoint(workdir, fingerprint)
    reads_done = ckpt["reads_done"] if ckpt else 0
    byte_offset = ckpt["byte_offset"] if ckpt else 0
    n_changed = ckpt.get("bases_changed", 0) if ckpt else 0
    if ckpt:
        os.truncate(partial, byte_offset)
        telemetry.count("checkpoint_resumes")
        telemetry.gauge("resumed_reads", reads_done)

    def remaining_blocks(error_counts):
        """Skip the blocks a prior attempt already made durable.

        Block boundaries are a pure function of (input, block_reads),
        so skipping whole blocks up to the checkpointed read count
        lands exactly where the prior attempt stopped; any mismatch
        means the checkpoint is stale and the job restarts cleanly.
        """
        skipped = 0
        for block in chunks(error_counts):
            if skipped < reads_done:
                if skipped + block.n_reads > reads_done:
                    raise RuntimeError(
                        f"checkpoint read count {reads_done} is not on a "
                        f"block boundary (block of {block.n_reads} after "
                        f"{skipped}); refusing to splice"
                    )
                skipped += block.n_reads
                continue
            yield block

    error_counts: dict = {}
    n_out = reads_done
    with telemetry.span("correct", method=spec.method, stream=True):
        # Append mode: a fresh attempt starts at offset 0 (file absent
        # or truncated above), a resumed one continues after the last
        # durable block.
        with open(partial, "at", encoding="utf-8") as out_handle:
            if out_handle.tell() != byte_offset:
                raise RuntimeError(
                    f"partial output at {out_handle.tell()} bytes, "
                    f"checkpoint says {byte_offset}; refusing to splice"
                )
            for block, report in correct_stream(
                corrector,
                remaining_blocks(error_counts),
                workers=spec.workers,
                chunk_size=spec.chunk_size,
            ):
                n_changed += int((report.reads.codes != block.codes).sum())
                n_out += block.n_reads
                write_fastq(report.reads, out_handle)
                out_handle.flush()
                os.fsync(out_handle.fileno())
                # Checkpoint only after the bytes are durable, so the
                # recorded offset never points past what a crash
                # preserves.
                atomic_write_json(
                    ckpt_path,
                    {
                        "fingerprint": fingerprint,
                        "reads_done": n_out,
                        "byte_offset": out_handle.tell(),
                        "bases_changed": n_changed,
                    },
                )
                hit_fault_point("service.block")
                _tick(tick)

    resumed = reads_done
    hit_fault_point("service.before_commit")
    with telemetry.span("write_output", path=spec.output):
        publish_file(partial, spec.output)
    ckpt_path.unlink(missing_ok=True)
    telemetry.gauge("bases_changed", n_changed)
    return {
        "reads": int(n_out),
        "bases_changed": int(n_changed),
        "resumed_reads": int(resumed),
        **{k: int(v) for k, v in error_counts.items()},
    }
