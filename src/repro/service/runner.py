"""Execute one claimed correction job, crash-safely.

The runner is the bridge between the durable job store and the
correction engines: it takes a claimed :class:`~repro.service.store.
JobRecord`, runs its :class:`~repro.service.spec.JobSpec` through the
:mod:`repro.core.api` registry (batch) or the streamed three-pass
pipeline (``stream=True``, mirroring ``repro correct --stream``), and
returns the result payload recorded on the job row.

Crash-safety contract (at-least-once execution, exactly-once output):

- **Batch jobs** publish their one artifact through
  :func:`repro.io.fastq.write_fastq`'s atomic path — a kill at any
  instant leaves either no output or the complete output, and a rerun
  rewrites identical bytes (correction is deterministic).
- **Stream jobs** write corrected blocks to a *partial* file inside
  the job's work directory, fsync it, then atomically record a
  checkpoint (``reads done``, durable byte offset, running counters,
  spec+input fingerprint).  A restarted attempt recomputes phase 1
  deterministically, adopts the longest durable prefix a prior
  attempt checkpointed, skips the already-corrected reads, and
  continues — the final :func:`~repro.io.atomic.publish_file` rename
  yields bytes identical to an uninterrupted run.  A checkpoint whose
  fingerprint does not match the current spec/input is ignored, never
  spliced.

Zombie fencing: work files are keyed by the store's ``claim_seq`` — a
per-job counter that grows on every claim and never resets — so each
claim appends to its **own** ``partial.<seq>.fastq`` inode.  Resuming
never reuses a predecessor's file in place: the durable prefix is
*copied* (bounded at the checkpointed offset) into the current
claim's partial.  A worker stalled past its lease can therefore keep
appending to its old inode (and rewriting its old checkpoint) without
ever touching the bytes the new lease owner publishes; its stale
checkpoint is harmless because any prefix it describes is the same
deterministic bytes, written by a single owner.  Stale files — a
partial with no checkpoint (killed before the first block became
durable), or any prior claim's leftovers — are pruned at the start of
each attempt, so they can never wedge a retry.

Scripted kill points (``REPRO_FAULT_POINTS``, see
:mod:`repro.mapreduce.faults`) pepper the hot path so the chaos suite
can SIGKILL a real worker at every interesting instant:
``service.claimed``, ``service.fitted``, ``service.partial_written``
(block bytes durable, checkpoint not yet recorded), ``service.block``,
``service.before_commit`` — plus ``service.before_finish`` hit by the
worker between artifact commit and the store's ``finish`` transition.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Callable

from .. import telemetry
from ..core.api import build_corrector, supports_chunking
from ..io.atomic import atomic_write_json, atomic_writer, publish_file
from ..io.fastq import read_fastq, read_fastq_chunks, write_fastq
from ..mapreduce.faults import hit_fault_point
from .pool import SpectrumPool
from .spec import JobSpec
from .store import JobRecord

#: ``partial.<claim_seq>.fastq`` / ``checkpoint.<claim_seq>.json``:
#: one pair of work files per claim, never shared between claims.
_PARTIAL_RE = re.compile(r"^partial\.(\d{6,})\.fastq$")
_CHECKPOINT_RE = re.compile(r"^checkpoint\.(\d{6,})\.json$")


def job_workdir(spool: str | Path, job_id: str) -> Path:
    """Per-job scratch directory under the spool (partial + checkpoint)."""
    return Path(spool) / "work" / job_id


def partial_path(workdir: str | Path, claim_seq: int) -> Path:
    """This claim's crash-safe partial output (fenced by claim_seq)."""
    return Path(workdir) / f"partial.{claim_seq:06d}.fastq"


def checkpoint_path(workdir: str | Path, claim_seq: int) -> Path:
    """This claim's atomic resume checkpoint (fenced by claim_seq)."""
    return Path(workdir) / f"checkpoint.{claim_seq:06d}.json"


def latest_checkpoint(workdir: str | Path) -> Path | None:
    """The highest-claim checkpoint file present, if any (test/ops aid)."""
    found = _scan_seqs(Path(workdir), _CHECKPOINT_RE)
    if not found:
        return None
    seq = max(found)
    return checkpoint_path(workdir, seq)


def _scan_seqs(workdir: Path, pattern: re.Pattern) -> dict[int, Path]:
    """Claim-seq -> path for every work file matching ``pattern``."""
    out: dict[int, Path] = {}
    if not workdir.is_dir():
        return out
    for entry in workdir.iterdir():
        m = pattern.match(entry.name)
        if m:
            out[int(m.group(1))] = entry
    return out


def execute_job(
    record: JobRecord,
    workdir: str | Path,
    tick: Callable[[], None] | None = None,
    pool: SpectrumPool | None = None,
) -> dict:
    """Run one claimed job to completion; returns the result payload.

    ``tick`` is the worker's heartbeat hook, called between blocks and
    phases: it renews the store lease and is the single place where
    :class:`~repro.service.store.LeaseLost` (abandon now, another
    worker owns the job) or ``KeyboardInterrupt`` (graceful shutdown;
    the last checkpoint is already durable) may be raised.

    ``pool`` is the process-wide warm-spectrum cache: when a prior job
    fitted the same (input fingerprint, method params) the fit phase —
    and for stream jobs the whole pass A/B scan — is skipped, and the
    cached corrector is handed to workers copy-on-write.
    """
    spec = record.spec
    spec.validate()
    hit_fault_point("service.claimed")
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    tel = None
    try:
        with telemetry.session("serve") as tel:
            telemetry.gauge("job_attempt", record.attempts)
            if spec.stream:
                result = _run_stream_job(
                    spec, workdir, record.claim_seq, tick, pool
                )
            else:
                result = _run_batch_job(spec, tick, pool)
            if pool is not None:
                for name, value in pool.stats().items():
                    telemetry.gauge(f"pool_{name}", value)
    finally:
        if tel is not None and spec.report:
            tel.report().write(spec.report)
    return result


def _tick(tick: Callable[[], None] | None) -> None:
    if tick is not None:
        tick()


def _pool_marker(hit: bool | None) -> None:
    """Record one job's pool outcome (no-op when no pool is wired)."""
    if hit is None:
        return
    telemetry.count("pool.hit" if hit else "pool.miss")
    telemetry.gauge("pool_hit", int(hit))


def _run_batch_job(
    spec: JobSpec,
    tick: Callable[[], None] | None,
    pool: SpectrumPool | None = None,
) -> dict:
    """In-memory correction; the single output write is atomic."""
    from ..parallel import correct_in_parallel

    error_counts: dict = {}
    with telemetry.span("read_input", path=spec.input):
        reads = read_fastq(
            spec.input, on_error=spec.on_error, error_counts=error_counts
        )
    telemetry.gauge("reads_input", reads.n_reads)
    _tick(tick)

    def fit():
        corrector = build_corrector(
            spec.method, reads, k=spec.k, genome_length=spec.genome_length
        )
        return corrector, {"n_reads": int(reads.n_reads)}

    hit: bool | None = None
    if pool is not None:
        # Key on the input *content*, not the path: the fingerprint is
        # hashed before the fit, so a file swapped in place between
        # jobs misses cleanly instead of reusing a stale spectrum.
        key = pool.key_for(spec)
        with telemetry.span("fit", method=spec.method):
            entry, hit = pool.get_or_build(key, fit)
        corrector = entry.corrector
    else:
        with telemetry.span("fit", method=spec.method):
            corrector, _meta = fit()
    _pool_marker(hit)
    hit_fault_point("service.fitted")
    _tick(tick)
    with telemetry.span("correct", method=spec.method):
        if supports_chunking(corrector):
            report = correct_in_parallel(
                corrector,
                reads,
                workers=spec.workers,
                chunk_size=spec.chunk_size,
                pool_hit=hit,
            )
            corrected = report.reads
        else:
            corrected = corrector.correct(reads)
    _tick(tick)
    n_changed = int((corrected.codes != reads.codes).sum())
    hit_fault_point("service.before_commit")
    with telemetry.span("write_output", path=spec.output):
        write_fastq(corrected, spec.output)
    telemetry.gauge("bases_changed", n_changed)
    return {
        "reads": int(reads.n_reads),
        "bases_changed": n_changed,
        "resumed_reads": 0,
        "pool_hit": int(bool(hit)),
        **{k: int(v) for k, v in error_counts.items()},
    }


def _load_checkpoint(
    workdir: Path, fingerprint: str, seq: int
) -> dict | None:
    """Claim ``seq``'s durable resume point, or ``None``.

    Invalid checkpoints (missing partial, stale fingerprint, offset
    beyond the durable bytes) are discarded, not repaired: correctness
    comes from recomputing, never from splicing mismatched state.
    """
    ckpt_path = checkpoint_path(workdir, seq)
    partial = partial_path(workdir, seq)
    if not ckpt_path.is_file() or not partial.is_file():
        return None
    try:
        with open(ckpt_path, "rt", encoding="utf-8") as fh:
            ckpt = json.load(fh)
    except (OSError, ValueError):
        return None
    if not isinstance(ckpt, dict) or ckpt.get("fingerprint") != fingerprint:
        return None
    offset = ckpt.get("byte_offset", 0)
    reads_done = ckpt.get("reads_done", 0)
    if not isinstance(offset, int) or offset < 0:
        return None
    if not isinstance(reads_done, int) or reads_done < 0:
        return None
    if partial.stat().st_size < offset:
        return None
    return ckpt


def _find_resume_checkpoint(
    workdir: Path, fingerprint: str, claim_seq: int
) -> tuple[dict, int] | None:
    """Best (checkpoint, source seq) left behind by a *prior* claim.

    Only strictly older claims are considered — the current claim's
    files cannot legitimately pre-exist (claim_seq never repeats), so
    anything under the current seq is debris to prune, not state to
    trust.  Among valid candidates the longest durable prefix wins
    (newest claim as tie-break); every candidate was appended by a
    single owner and fsynced before its checkpoint, so any of them is
    a clean prefix of the deterministic output.
    """
    best: tuple[dict, int] | None = None
    for seq in _scan_seqs(workdir, _CHECKPOINT_RE):
        if seq >= claim_seq:
            continue
        ckpt = _load_checkpoint(workdir, fingerprint, seq)
        if ckpt is None:
            continue
        if best is None or (
            (ckpt["reads_done"], seq) > (best[0]["reads_done"], best[1])
        ):
            best = (ckpt, seq)
    return best


def _adopt_partial(
    workdir: Path, src_seq: int, dst: Path, length: int
) -> None:
    """Copy a predecessor's durable prefix into this claim's partial.

    A *copy* (new inode), never a rename or in-place reuse: a zombie of
    the source claim may still hold an open descriptor and append past
    its lease, but those writes land on its own inode and can never
    interleave with ours.  The copy itself goes through
    :func:`~repro.io.atomic.atomic_writer`, so a crash mid-adoption
    leaves no half-copied partial behind.
    """
    src_path = partial_path(workdir, src_seq)
    with atomic_writer(dst, "wb") as out:
        with open(src_path, "rb") as src:
            remaining = length
            while remaining > 0:
                block = src.read(min(1 << 20, remaining))
                if not block:
                    raise RuntimeError(
                        f"{src_path} shrank below its checkpointed "
                        f"{length} bytes during adoption"
                    )
                out.write(block)
                remaining -= len(block)


def _prune_stale_work_files(workdir: Path, claim_seq: int) -> None:
    """Drop every other claim's partials and checkpoints.

    Runs after adoption, so the surviving state is exactly this
    claim's.  Unlinking a live zombie's partial is safe — its open
    descriptor keeps the inode alive for its own useless appends — and
    a checkpoint it later rewrites at the old path is ignored by
    :func:`_load_checkpoint` because the partial path no longer
    exists.  This is also what keeps a *checkpoint-less* partial
    (killed before the first block became durable) from wedging
    retries: it is simply deleted, and the attempt starts clean.
    """
    for pattern in (_PARTIAL_RE, _CHECKPOINT_RE):
        for seq, path in _scan_seqs(workdir, pattern).items():
            if seq != claim_seq:
                path.unlink(missing_ok=True)


def _fit_stream_corrector(
    spec: JobSpec,
    workdir: Path,
    tick: Callable[[], None] | None,
    chunks: Callable,
) -> tuple[object, dict]:
    """Passes A and B of a stream job: statistics, then phase-1 fit.

    Returns ``(corrector, meta)`` in the shape
    :meth:`~repro.service.pool.SpectrumPool.get_or_build` expects, so
    the whole two-pass scan is skipped on a warm-pool hit.
    """
    import numpy as np

    from ..core.reptile import ReptileCorrector
    from ..core.reptile.params import (
        add_histograms,
        quality_histogram,
        select_parameters_streaming,
    )
    from ..kmer.streaming import (
        SpectrumAccumulator,
        TileAccumulator,
        build_from_chunks,
    )

    # Pass A — streamed parameter statistics.
    qhist = np.zeros(0, dtype=np.int64)
    n_reads = 0
    with telemetry.span("stream.scan", path=spec.input):
        for chunk in chunks():
            qhist = add_histograms(qhist, quality_histogram(chunk))
            n_reads += chunk.n_reads
    telemetry.gauge("reads_input", n_reads)
    _tick(tick)

    # Pass B — phase-1 spectrum/tiles, same select-then-replace
    # semantics as the CLI streaming path.
    sel_params = select_parameters_streaming(
        qhist, np.zeros(0, dtype=np.int64),
        genome_length_estimate=spec.genome_length,
    )
    k_final = spec.k if spec.k is not None else sel_params.k
    with telemetry.span("fit", method=spec.method, k=k_final):
        spec_acc = SpectrumAccumulator(
            k_final, max_memory_bytes=spec.max_memory, tmp_dir=workdir
        )
        accs = [spec_acc]
        sel_tiles_acc = TileAccumulator(
            sel_params.k,
            overlap=sel_params.overlap,
            quality_cutoff=sel_params.qc,
            max_memory_bytes=spec.max_memory,
            tmp_dir=workdir,
        )
        accs.append(sel_tiles_acc)
        final_tiles_acc = sel_tiles_acc
        if k_final != sel_params.k:
            final_tiles_acc = TileAccumulator(
                k_final,
                overlap=sel_params.overlap,
                quality_cutoff=sel_params.qc,
                max_memory_bytes=spec.max_memory,
                tmp_dir=workdir,
            )
            accs.append(final_tiles_acc)
        with telemetry.span("stream.phase1"):
            results = build_from_chunks(chunks(), accs)
        spectrum = results[0]
        sel_tiles = results[1]
        tiles = results[accs.index(final_tiles_acc)]
        params = select_parameters_streaming(
            qhist, sel_tiles.og, genome_length_estimate=spec.genome_length
        )
        if spec.k is not None:
            from dataclasses import replace

            params = replace(params, k=spec.k)
        corrector = ReptileCorrector(
            params=params, spectrum=spectrum, tiles=tiles
        )
    return corrector, {"n_reads": int(n_reads)}


def _run_stream_job(
    spec: JobSpec,
    workdir: Path,
    claim_seq: int,
    tick: Callable[[], None] | None,
    pool: SpectrumPool | None = None,
) -> dict:
    """Out-of-core correction with block-granular crash recovery.

    Mirrors ``repro correct --stream`` (pass A statistics, pass B
    phase-1 structures, pass C chunked correction) but stages output
    through this claim's ``partial.<seq>.fastq`` with an atomic
    checkpoint after every durable block, then publishes with one
    rename.  ``claim_seq`` fences the work files: see the module
    docstring for the zombie story.  With a warm ``pool``, a repeat
    job skips passes A and B outright.
    """
    from ..parallel import correct_stream

    block_reads = spec.chunk_size * spec.workers
    fingerprint = spec.fingerprint()
    partial = partial_path(workdir, claim_seq)
    ckpt_path = checkpoint_path(workdir, claim_seq)

    def chunks(error_counts=None):
        return read_fastq_chunks(
            spec.input,
            block_reads,
            on_error=spec.on_error,
            error_counts=error_counts,
        )

    def fit():
        return _fit_stream_corrector(spec, workdir, tick, chunks)

    hit: bool | None = None
    if pool is not None:
        entry, hit = pool.get_or_build(pool.key_for(spec), fit)
        corrector = entry.corrector
        if hit:
            # The scan was skipped; replay its one load-bearing gauge
            # from the entry's build-time metadata.
            telemetry.gauge("reads_input", entry.meta["n_reads"])
    else:
        corrector, _meta = fit()
    _pool_marker(hit)
    hit_fault_point("service.fitted")
    _tick(tick)

    # Pass C — chunked correction resuming from the best durable block
    # a prior claim left behind, adopted into this claim's own fenced
    # partial (copy-bounded at the checkpointed offset, so bytes a
    # crash made durable *without* a covering checkpoint are dropped).
    found = _find_resume_checkpoint(workdir, fingerprint, claim_seq)
    if found:
        ckpt, src_seq = found
        reads_done = ckpt["reads_done"]
        byte_offset = ckpt["byte_offset"]
        n_changed = ckpt.get("bases_changed", 0)
        _adopt_partial(workdir, src_seq, partial, byte_offset)
        atomic_write_json(
            ckpt_path,
            {
                "fingerprint": fingerprint,
                "reads_done": reads_done,
                "byte_offset": byte_offset,
                "bases_changed": n_changed,
            },
        )
        telemetry.count("checkpoint_resumes")
        telemetry.gauge("resumed_reads", reads_done)
    else:
        # No usable resume point: start clean.  The current claim's
        # partial cannot legitimately pre-exist (claim_seq is unique),
        # so anything at that path is debris to discard, never splice.
        reads_done = 0
        byte_offset = 0
        n_changed = 0
        partial.unlink(missing_ok=True)
        ckpt_path.unlink(missing_ok=True)
    _prune_stale_work_files(workdir, claim_seq)

    def remaining_blocks(error_counts):
        """Skip the blocks a prior attempt already made durable.

        Block boundaries are a pure function of (input, block_reads),
        so skipping whole blocks up to the checkpointed read count
        lands exactly where the prior attempt stopped; any mismatch
        means the checkpoint is stale and the job restarts cleanly.
        """
        skipped = 0
        for block in chunks(error_counts):
            if skipped < reads_done:
                if skipped + block.n_reads > reads_done:
                    raise RuntimeError(
                        f"checkpoint read count {reads_done} is not on a "
                        f"block boundary (block of {block.n_reads} after "
                        f"{skipped}); refusing to splice"
                    )
                skipped += block.n_reads
                continue
            yield block

    error_counts: dict = {}
    n_out = reads_done
    with telemetry.span("correct", method=spec.method, stream=True):
        # Append mode on this claim's own fenced partial: a fresh
        # attempt starts at offset 0 (file unlinked above), a resumed
        # one continues right after the adopted durable prefix.
        with open(partial, "at", encoding="utf-8") as out_handle:
            if out_handle.tell() != byte_offset:
                raise RuntimeError(
                    f"partial output at {out_handle.tell()} bytes, "
                    f"checkpoint says {byte_offset}; refusing to splice"
                )
            for block, report in correct_stream(
                corrector,
                remaining_blocks(error_counts),
                workers=spec.workers,
                chunk_size=spec.chunk_size,
                pool_hit=hit,
            ):
                n_changed += int((report.reads.codes != block.codes).sum())
                n_out += block.n_reads
                write_fastq(report.reads, out_handle)
                out_handle.flush()
                os.fsync(out_handle.fileno())
                hit_fault_point("service.partial_written")
                # Checkpoint only after the bytes are durable, so the
                # recorded offset never points past what a crash
                # preserves.
                atomic_write_json(
                    ckpt_path,
                    {
                        "fingerprint": fingerprint,
                        "reads_done": n_out,
                        "byte_offset": out_handle.tell(),
                        "bases_changed": n_changed,
                    },
                )
                hit_fault_point("service.block")
                _tick(tick)

    resumed = reads_done
    hit_fault_point("service.before_commit")
    with telemetry.span("write_output", path=spec.output):
        publish_file(partial, spec.output)
    ckpt_path.unlink(missing_ok=True)
    telemetry.gauge("bases_changed", n_changed)
    return {
        "reads": int(n_out),
        "bases_changed": int(n_changed),
        "resumed_reads": int(resumed),
        "pool_hit": int(bool(hit)),
        **{k: int(v) for k, v in error_counts.items()},
    }
