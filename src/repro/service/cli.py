"""``repro jobs`` — submit and operate on durable correction jobs.

The operator surface of the service, now a thin skin over
:class:`repro.service.client.JobsClient`::

    python -m repro jobs --spool spool/ submit in.fastq out.fastq \\
        --stream --workers 4 --max-attempts 5
    python -m repro jobs --url http://127.0.0.1:8765 list
    python -m repro jobs --spool spool/ status job-000001 --json
    python -m repro jobs --url http://127.0.0.1:8765 result job-000001 out.fastq
    python -m repro jobs --spool spool/ retry job-000001
    python -m repro jobs --spool spool/ cancel job-000002

``--spool DIR`` operates the store in-process (no server needed);
``--url BASE`` sends the same verbs to a ``repro serve-http`` server —
output is identical either way, because both paths run the same
:class:`~repro.service.http.ServiceAPI` verbs and ``repro-job/1``
envelopes.  ``submit`` mirrors the ``repro correct`` flag surface (a
job spec *is* a serialized correct invocation); the remaining verbs
are single service calls, safe to run while workers are live.

``--store DB_PATH`` (deprecated) still opens a job database file
directly, bypassing the client layer, for scripts written against the
pre-HTTP CLI.
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings
from pathlib import Path

from ..core.api import available_methods
from ..tools.common import memory_size
from .client import HTTPTransport, JobsClient, LocalTransport, \
    ServiceError, TransportError
from .spec import DEFAULT_TENANT, JobSpec
from .store import STATES, JobStore
from .worker import SpoolError


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-jobs",
        description="Operate the durable correction job queue.",
    )
    where = p.add_mutually_exclusive_group(required=True)
    where.add_argument(
        "--spool", type=Path, default=None,
        help="spool directory holding the job store (operated "
             "in-process; created if missing)",
    )
    where.add_argument(
        "--url", default=None, metavar="BASE_URL",
        help="base URL of a `repro serve-http` server "
             "(e.g. http://127.0.0.1:8765)",
    )
    where.add_argument(
        "--store", type=Path, default=None, metavar="DB_PATH",
        help="(deprecated) open a job database file directly, "
             "bypassing the service API",
    )
    sub = p.add_subparsers(dest="verb", required=True)

    s = sub.add_parser("submit", help="enqueue one correction job")
    s.add_argument("input", help="input FASTQ")
    s.add_argument("output", help="corrected FASTQ destination")
    s.add_argument("--method", choices=available_methods(),
                   default="reptile")
    s.add_argument("--k", type=int, default=None)
    s.add_argument("--genome-length", type=int, default=None)
    s.add_argument("--workers", type=int, default=1)
    s.add_argument("--chunk-size", type=int, default=2048)
    s.add_argument("--stream", action="store_true",
                   help="out-of-core three-pass correction with "
                        "block-granular crash recovery")
    s.add_argument("--max-memory", type=memory_size, default=None,
                   metavar="SIZE",
                   help="bound phase-1 k-mer memory, spilling to disk "
                        "(implies --stream)")
    s.add_argument("--on-error", choices=["raise", "skip"],
                   default="raise")
    s.add_argument("--report", default=None,
                   help="write a repro-run-report/1 JSON here on finish")
    s.add_argument("--max-attempts", type=int, default=3,
                   help="attempts before the job fails for good")
    s.add_argument("--tenant", default=DEFAULT_TENANT,
                   help="tenant queue to file the job under "
                        "(fair-share claiming; default %(default)r)")
    s.add_argument("--label", action="append", default=[],
                   metavar="KEY=VALUE",
                   help="free-form label (repeatable)")

    g = sub.add_parser("status", help="show one job")
    g.add_argument("job_id")
    g.add_argument("--json", action="store_true")

    ls = sub.add_parser("list", help="list jobs (optionally by state)")
    ls.add_argument("--state", choices=list(STATES), default=None)
    ls.add_argument("--tenant", default=None,
                    help="only this tenant's jobs")
    ls.add_argument("--json", action="store_true")

    r = sub.add_parser("retry", help="requeue a failed/cancelled job")
    r.add_argument("job_id")

    c = sub.add_parser("cancel", help="cancel a pending/running job")
    c.add_argument("job_id")

    res = sub.add_parser(
        "result", help="fetch a succeeded job's corrected FASTQ"
    )
    res.add_argument("job_id")
    res.add_argument("dest", type=Path,
                     help="write the corrected reads here (atomically)")
    return p


def _parse_labels(pairs: list[str]) -> dict:
    labels = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--label must be KEY=VALUE, got {pair!r}")
        labels[key] = value
    return labels


def _render(record) -> str:
    """One status line; accepts a JobRecord or a client Job alike."""
    lease = ""
    if record.lease_owner:
        lease = f" lease={record.lease_owner}"
    err = f" error={record.error!r}" if record.error else ""
    return (
        f"{record.id}  {record.state:<9s} "
        f"attempt {record.attempts}/{record.max_attempts}{lease}{err}  "
        f"{record.spec.input} -> {record.spec.output}"
    )


def _build_spec(args: argparse.Namespace) -> JobSpec | None:
    """The submit verb's JobSpec, or None after printing a clear error."""
    stream = args.stream or args.max_memory is not None
    if stream and args.method != "reptile":
        # Surface the implication before JobSpec.validate turns it
        # into a confusing "stream jobs ..." rejection for a user
        # who never passed --stream.
        lead = (
            "--stream supports" if args.stream
            else "--max-memory implies --stream, which supports"
        )
        print(
            f"error: {lead} the reptile method only "
            f"(got --method {args.method})",
            file=sys.stderr,
        )
        return None
    return JobSpec(
        input=args.input,
        output=args.output,
        method=args.method,
        k=args.k,
        genome_length=args.genome_length,
        workers=args.workers,
        chunk_size=args.chunk_size,
        stream=stream,
        max_memory=args.max_memory,
        on_error=args.on_error,
        report=args.report,
        labels=_parse_labels(args.label),
    )


def _client_for(args: argparse.Namespace) -> JobsClient:
    if args.url is not None:
        return JobsClient(HTTPTransport(args.url))
    from .http import ServiceAPI

    return JobsClient(LocalTransport(ServiceAPI(args.spool)))


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    args = build_parser().parse_args(argv)
    if args.store is not None:
        warnings.warn(
            "repro jobs --store is deprecated; use --spool DIR (same "
            "behavior through the service API) or --url for a live "
            "server",
            DeprecationWarning,
            stacklevel=2,
        )
        with JobStore(args.store) as store:
            return _dispatch(args, store)
    try:
        client = _client_for(args)
    except SpoolError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    try:
        return _run(args, client)
    except TransportError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    finally:
        api = getattr(getattr(client, "transport", None), "api", None)
        if api is not None:
            api.close()


def _run(args: argparse.Namespace, client: JobsClient) -> int:
    """Execute one verb through the client; byte-compatible output."""
    if args.verb == "submit":
        spec = _build_spec(args)
        if spec is None:
            return 2
        try:
            job = client.submit(
                spec, tenant=args.tenant, max_attempts=args.max_attempts
            )
        except ServiceError as e:
            print(f"error: {e.message}", file=sys.stderr)
            return 1
        print(job.id)
        return 0

    if args.verb == "status":
        try:
            job = client.get(args.job_id)
        except ServiceError:
            print(f"no such job: {args.job_id}", file=sys.stderr)
            return 1
        if args.json:
            print(json.dumps(job.raw, indent=2, sort_keys=True))
        else:
            print(_render(job))
        return 0

    if args.verb == "list":
        jobs, counts = client.list(state=args.state, tenant=args.tenant)
        if args.json:
            print(json.dumps(
                [job.raw for job in jobs], indent=2, sort_keys=True
            ))
        else:
            for job in jobs:
                print(_render(job))
            print(
                "totals: "
                + " ".join(f"{s}={n}" for s, n in counts.items() if n)
            )
        return 0

    if args.verb == "retry":
        try:
            client.retry(args.job_id)
        except ServiceError:
            print(
                f"{args.job_id}: not retryable (must exist and be "
                "failed/cancelled)",
                file=sys.stderr,
            )
            return 1
        print(f"{args.job_id} requeued")
        return 0

    if args.verb == "cancel":
        try:
            client.cancel(args.job_id)
        except ServiceError:
            print(
                f"{args.job_id}: not cancellable (must exist and be "
                "pending/running)",
                file=sys.stderr,
            )
            return 1
        print(f"{args.job_id} cancelled")
        return 0

    if args.verb == "result":
        try:
            dest = client.result(args.job_id, args.dest)
        except ServiceError as e:
            print(f"error: {e.message}", file=sys.stderr)
            return 1
        print(dest)
        return 0

    raise AssertionError(f"unhandled verb {args.verb!r}")


def _dispatch(args: argparse.Namespace, store: JobStore) -> int:
    """Deprecated direct-store dispatch (the pre-HTTP CLI's core).

    Kept byte-for-byte behavior-compatible for scripts that import it
    or run ``--store``; everything else goes through :func:`_run`.
    """
    if args.verb == "submit":
        spec = _build_spec(args)
        if spec is None:
            return 2
        job_id = store.submit(
            spec,
            max_attempts=args.max_attempts,
            tenant=getattr(args, "tenant", DEFAULT_TENANT),
        )
        print(job_id)
        return 0

    if args.verb == "status":
        record = store.get(args.job_id)
        if record is None:
            print(f"no such job: {args.job_id}", file=sys.stderr)
            return 1
        if args.json:
            print(json.dumps(record.as_dict(), indent=2, sort_keys=True))
        else:
            print(_render(record))
        return 0

    if args.verb == "list":
        records = store.list_jobs(
            state=args.state, tenant=getattr(args, "tenant", None)
        )
        if args.json:
            print(json.dumps(
                [r.as_dict() for r in records], indent=2, sort_keys=True
            ))
        else:
            for record in records:
                print(_render(record))
            counts = store.counts()
            print(
                "totals: "
                + " ".join(f"{s}={n}" for s, n in counts.items() if n)
            )
        return 0

    if args.verb == "retry":
        if not store.retry(args.job_id):
            print(
                f"{args.job_id}: not retryable (must exist and be "
                "failed/cancelled)",
                file=sys.stderr,
            )
            return 1
        print(f"{args.job_id} requeued")
        return 0

    if args.verb == "cancel":
        if not store.cancel(args.job_id):
            print(
                f"{args.job_id}: not cancellable (must exist and be "
                "pending/running)",
                file=sys.stderr,
            )
            return 1
        print(f"{args.job_id} cancelled")
        return 0

    if args.verb == "result":
        print(
            "result is not supported with --store; use --spool or --url",
            file=sys.stderr,
        )
        return 2

    raise AssertionError(f"unhandled verb {args.verb!r}")


if __name__ == "__main__":
    raise SystemExit(main())
