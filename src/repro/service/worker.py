"""The serve worker: claim, run, heartbeat, repeat — and die safely.

One :class:`ServeWorker` is one process in the fleet sharing a spool
directory.  Its loop is deliberately boring::

    while not stopping:
        job = store.claim(worker_id, lease)     # atomic, or None
        execute_job(job, workdir, tick)         # heartbeats inside
        store.finish(job) / fail_attempt(job)   # one transition

Everything interesting is in how it *stops*:

- **SIGTERM / SIGINT** — the first signal arms a latch (and counts a
  ``shutdown.requested`` metric); the worker finishes the chunk in
  flight, checkpoints stream jobs at the last durable block, releases
  its lease (the attempt is refunded), and exits 0.  A second signal
  aborts immediately — the lease then simply expires and the job is
  reclaimed, exactly as if the worker had been killed.
- **SIGKILL / power loss** — nothing runs, and nothing needs to: the
  lease lapses, :meth:`~repro.service.store.JobStore.claim` reaps the
  job back to pending with backoff, and the next attempt resumes from
  the last durable checkpoint.  Chaos tests drive this path at every
  scripted kill point.
- **Lease lost** — if :meth:`~repro.service.store.JobStore.renew`
  fails (expiry or cancellation), the worker abandons the job
  mid-run without touching the store; artifact publication is
  owner-guarded so the abandoned attempt can never finish the job.
"""

from __future__ import annotations

import os
import shutil
import signal
import socket
import threading
import time
from pathlib import Path
from typing import Callable

import sqlite3

from .. import telemetry
from ..io.atomic import ensure_dir
from ..mapreduce.faults import hit_fault_point
from .pool import SpectrumPool
from .runner import execute_job, job_workdir
from .store import JobRecord, JobStore, LeaseLost

#: Spool-relative name of the shared job database.
DB_NAME = "jobs.sqlite3"


class SpoolError(RuntimeError):
    """A spool directory cannot be created or its store opened.

    Raised with a human-readable reason (unwritable parent, read-only
    filesystem, a file where the directory should be, corrupt
    database); the CLIs turn it into exit code 2 instead of a
    traceback.
    """


def open_spool_store(spool: str | Path, **store_kwargs) -> JobStore:
    """Open (creating durably if needed) the job store under ``spool``.

    The one sanctioned way for CLIs and the HTTP server to reach a
    spool: parents are created atomically-durably via
    :func:`repro.io.atomic.ensure_dir`, and every "the operator gave
    us an unusable path" failure mode surfaces as :class:`SpoolError`.
    """
    spool = Path(spool)
    try:
        ensure_dir(spool)
        return JobStore(spool / DB_NAME, **store_kwargs)
    except (OSError, sqlite3.Error) as e:
        raise SpoolError(
            f"cannot open spool {spool}: {type(e).__name__}: {e}"
        ) from e


def default_worker_id() -> str:
    host = socket.gethostname() or "host"
    return f"{host}-{os.getpid()}"


class ServeWorker:
    """Single-process job-claiming daemon over one spool directory.

    ``monotonic`` and ``sleep`` are injectable for deterministic tests
    (the lease *deadlines* use the store's clock; only the heartbeat
    cadence and idle poll run on this process-local clock).
    """

    def __init__(
        self,
        spool: str | Path,
        store: JobStore | None = None,
        worker_id: str | None = None,
        lease_seconds: float = 30.0,
        poll_seconds: float = 0.2,
        monotonic: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        pool: SpectrumPool | None = None,
    ) -> None:
        self.spool = Path(spool)
        self.store = store if store is not None else open_spool_store(
            self.spool
        )
        #: Warm shared-spectrum cache, on by default (a zero-budget
        #: ``SpectrumPool(max_bytes=0, max_entries=0)`` disables
        #: retention).  Shared across jobs this worker runs — and, for
        #: embedded-worker deployments, across worker threads.
        self.pool = pool if pool is not None else SpectrumPool()
        self.worker_id = worker_id or default_worker_id()
        self.lease_seconds = lease_seconds
        # Renew well inside the lease so one slow chunk cannot silently
        # cross the deadline.
        self.heartbeat_seconds = lease_seconds / 3.0
        self.poll_seconds = poll_seconds
        self._monotonic = monotonic
        self._sleep = sleep
        self._stop = False
        self.stats = {
            "claimed": 0, "succeeded": 0, "failed": 0,
            "released": 0, "lease_lost": 0,
        }

    # -- signals ------------------------------------------------------
    def _handle_signal(self, signum: int, frame: object) -> None:
        if self._stop:
            raise KeyboardInterrupt(
                f"second signal {signum}; aborting immediately"
            )
        self._stop = True
        telemetry.count("shutdown.requested")
        self._log(f"signal {signum}: finishing current work, then exiting")

    def _install_signals(self) -> dict[int, object]:
        previous: dict[int, object] = {}
        if threading.current_thread() is threading.main_thread():
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    previous[signum] = signal.signal(
                        signum, self._handle_signal
                    )
                except (ValueError, OSError):  # pragma: no cover
                    pass
        return previous

    def _log(self, message: str) -> None:
        print(f"[serve {self.worker_id}] {message}", flush=True)

    def stop(self) -> None:
        """Request a graceful stop (thread-safe, signal-equivalent).

        The embedded-worker path: HTTP server threads cannot receive
        the process signals, so shutdown calls this instead.  The
        worker finishes the chunk in flight, releases its lease, and
        exits its loop.
        """
        self._stop = True

    # -- one job ------------------------------------------------------
    def _make_tick(self, job: JobRecord) -> Callable[[], None]:
        last_renew = [self._monotonic()]

        def tick() -> None:
            if self._stop:
                raise KeyboardInterrupt("shutdown requested")
            now = self._monotonic()
            if now - last_renew[0] >= self.heartbeat_seconds:
                if not self.store.renew(
                    job.id, self.worker_id, self.lease_seconds
                ):
                    raise LeaseLost(
                        f"{job.id}: lease no longer held by "
                        f"{self.worker_id}"
                    )
                last_renew[0] = now

        return tick

    def process_one(self, job: JobRecord) -> None:
        """Run one claimed job through exactly one store transition."""
        self.stats["claimed"] += 1
        self._log(
            f"claimed {job.id} (attempt {job.attempts}/{job.max_attempts})"
        )
        workdir = job_workdir(self.spool, job.id)
        try:
            result = execute_job(
                job, workdir, tick=self._make_tick(job), pool=self.pool
            )
        except LeaseLost as e:
            # Another worker owns (or will own) the job now; our store
            # row is not ours to touch.
            self.stats["lease_lost"] += 1
            telemetry.count("jobs.lease_lost")
            self._log(f"abandoned {job.id}: {e}")
        except KeyboardInterrupt:
            # Graceful shutdown: stream checkpoints are already
            # durable, so refund the attempt and requeue immediately.
            if self.store.release(job.id, self.worker_id):
                self.stats["released"] += 1
                self._log(f"released {job.id} for shutdown")
            self._stop = True
        except Exception as e:
            self.stats["failed"] += 1
            telemetry.count("jobs.failed")
            error = f"{type(e).__name__}: {e}"
            if self.store.fail_attempt(job.id, self.worker_id, error):
                self._log(f"attempt failed on {job.id}: {error}")
        else:
            hit_fault_point("service.before_finish")
            if self.store.finish(job.id, self.worker_id, result):
                self.stats["succeeded"] += 1
                self._log(f"finished {job.id}: {result}")
                shutil.rmtree(workdir, ignore_errors=True)
            else:
                # Completed the work but lost the lease at the line;
                # output publication was atomic and idempotent, so the
                # retry will simply rewrite identical bytes.
                self.stats["lease_lost"] += 1
                telemetry.count("jobs.lease_lost")
                self._log(f"finished {job.id} but lease was lost")

    # -- the loop -----------------------------------------------------
    def run(
        self, max_jobs: int | None = None, idle_exit: bool = False
    ) -> int:
        """Claim-and-run until stopped; returns the process exit code.

        ``idle_exit`` ends the loop at the first empty poll (after the
        retry backlog drains) — the mode chaos tests and batch scripts
        use; a long-lived daemon omits it and polls forever.
        """
        previous = self._install_signals()
        done = 0
        try:
            while not self._stop:
                job = self.store.claim(self.worker_id, self.lease_seconds)
                if job is None:
                    if idle_exit and not self._pending_later():
                        break
                    self._sleep(self.poll_seconds)
                    continue
                self.process_one(job)
                done += 1
                if max_jobs is not None and done >= max_jobs:
                    break
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
        self._log(
            f"exiting after {done} job(s): "
            + ", ".join(f"{k}={v}" for k, v in self.stats.items() if v)
        )
        return 0

    def _pending_later(self) -> bool:
        """Any pending work at all (including backoff-gated retries)?

        ``claim`` returning None can mean "empty queue" or "retries
        waiting out their backoff"; with ``idle_exit`` the worker keeps
        polling through the latter so a crashed job's retry is not
        stranded.
        """
        return bool(self.store.list_jobs(state="pending")) or bool(
            self.store.list_jobs(state="running")
        )
