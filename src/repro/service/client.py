"""Layered client API for the correction job service.

:class:`JobsClient` is the one programmatic surface for operating
jobs; it speaks ``repro-job/1`` envelopes through a pluggable
transport:

- :class:`HTTPTransport` — talks to a ``repro serve-http`` server over
  stdlib ``urllib``, retrying connection refusals and 5xx responses
  with exponential backoff (a server restart mid-poll is invisible);
- :class:`LocalTransport` — wraps an in-process
  :class:`~repro.service.http.ServiceAPI` over a spool directory, so
  scripts and the ``repro jobs`` CLI get the *same* verbs, validation,
  and error codes with no server running.

Every response envelope is validated against the wire schema before
use, so a drifting server fails loudly in the client rather than
producing silently-wrong ``Job`` objects::

    client = JobsClient(HTTPTransport("http://127.0.0.1:8765"))
    job = client.submit(JobSpec(input="in.fastq", output="out.fastq"))
    job = client.wait(job.id, timeout=600)
    client.result(job.id, Path("corrected.fastq"))

Errors the *service* can express (404 not-found, 409 conflict, 429
rate-limited...) raise :class:`ServiceError`; transport exhaustion
(server unreachable after retries) raises :class:`TransportError`.
4xx responses are never retried — they would fail identically again.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
import uuid
from contextlib import contextmanager
from urllib.parse import quote, urlencode
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Callable, Iterator

from ..io.atomic import atomic_writer
from . import spec as wire
from .spec import DEFAULT_TENANT, JobSpec

__all__ = [
    "Job",
    "JobsClient",
    "HTTPTransport",
    "LocalTransport",
    "ServiceError",
    "TransportError",
    "TERMINAL_STATES",
]

#: States a job never leaves; :meth:`JobsClient.wait` stops on these.
TERMINAL_STATES = ("succeeded", "failed", "cancelled")


class ServiceError(Exception):
    """The service answered with an error envelope (or its local
    equivalent): the request is wrong, not the connection."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message


class TransportError(Exception):
    """The service could not be reached (after retries)."""


def _quoted(job_id: str) -> str:
    """Percent-encode a job id for use as one URL path segment.

    ``safe=""`` also encodes ``/``, so an id like ``"jobs/evil"``
    stays a single segment instead of rewriting the route.
    """
    return quote(job_id, safe="")


@dataclass(frozen=True)
class Job:
    """One job's wire state, typed for the common fields.

    ``raw`` holds the exact ``job`` payload the service sent (the
    :meth:`JobRecord.as_dict` shape), so callers needing byte-stable
    JSON — the CLI's ``--json`` output — re-serialize it unchanged.
    """

    raw: dict = field(repr=False)

    @property
    def id(self) -> str:
        return self.raw["id"]

    @property
    def state(self) -> str:
        return self.raw["state"]

    @property
    def tenant(self) -> str:
        return self.raw["tenant"]

    @property
    def attempts(self) -> int:
        return self.raw["attempts"]

    @property
    def max_attempts(self) -> int:
        return self.raw["max_attempts"]

    @property
    def error(self) -> str | None:
        return self.raw["error"]

    @property
    def result(self) -> dict | None:
        return self.raw["result"]

    @property
    def lease_owner(self) -> str | None:
        return self.raw["lease_owner"]

    @property
    def spec(self) -> JobSpec:
        return JobSpec.from_dict(self.raw["spec"])

    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES


def _raise_for_envelope(status: int, envelope: object) -> None:
    """Turn an error envelope into the matching :class:`ServiceError`."""
    code, message = "internal", f"service returned HTTP {status}"
    if isinstance(envelope, dict):
        err = envelope.get("error")
        if isinstance(err, dict):
            code = str(err.get("code", code))
            message = str(err.get("message", message))
    raise ServiceError(status, code, message)


class HTTPTransport:
    """``repro-job/1`` over HTTP via stdlib urllib, with retries.

    Connection failures and 5xx responses are retried up to
    ``retries`` times with exponential backoff starting at
    ``backoff`` seconds (``sleep`` is injectable for tests); 4xx
    responses raise :class:`ServiceError` immediately.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retries: int = 5,
        backoff: float = 0.2,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self._sleep = sleep

    @contextmanager
    def _open(
        self, method: str, path: str, body: object | None = None
    ) -> Iterator[IO[bytes]]:
        url = self.base_url + path
        data = None
        headers = {}
        if body is not None:
            data = json.dumps(body, sort_keys=True).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in range(self.retries + 1):
            request = urllib.request.Request(
                url, data=data, headers=headers, method=method
            )
            try:
                resp = urllib.request.urlopen(request, timeout=self.timeout)
            except urllib.error.HTTPError as e:
                if e.code >= 500 and attempt < self.retries:
                    e.close()
                    self._sleep(self.backoff * (2 ** attempt))
                    continue
                try:
                    payload = json.loads(e.read().decode("utf-8"))
                except (ValueError, UnicodeDecodeError, OSError):
                    payload = None
                finally:
                    e.close()
                _raise_for_envelope(e.code, payload)
            except (urllib.error.URLError, ConnectionError, OSError) as e:
                # Connection refused / reset: the server may be
                # restarting — exactly the case retries exist for.
                if attempt < self.retries:
                    self._sleep(self.backoff * (2 ** attempt))
                    continue
                raise TransportError(
                    f"cannot reach {url} after "
                    f"{self.retries + 1} attempt(s): {e}"
                ) from e
            try:
                yield resp
            finally:
                resp.close()
            return
        raise AssertionError("unreachable")  # pragma: no cover

    def _json(
        self, method: str, path: str, body: object | None = None
    ) -> dict:
        with self._open(method, path, body) as resp:
            try:
                return json.loads(resp.read().decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as e:
                raise ServiceError(
                    502, "bad-response",
                    f"non-JSON response from {self.base_url}: {e}",
                ) from None

    # A retried POST /v1/jobs may duplicate a job whose first response
    # was lost; JobsClient defuses this by pre-generating the id for
    # transports that advertise the hazard.
    retries_submits = True

    # -- verbs (each returns a validated-upstream envelope dict) ------
    def submit(self, document: dict) -> dict:
        return self._json("POST", "/v1/jobs", document)

    def get(self, job_id: str) -> dict:
        return self._json("GET", f"/v1/jobs/{_quoted(job_id)}")

    def list(
        self, state: str | None = None, tenant: str | None = None
    ) -> dict:
        query = urlencode(
            [
                (key, value)
                for key, value in (("state", state), ("tenant", tenant))
                if value is not None
            ]
        )
        return self._json("GET", "/v1/jobs" + (f"?{query}" if query else ""))

    def cancel(self, job_id: str) -> dict:
        return self._json("DELETE", f"/v1/jobs/{_quoted(job_id)}")

    def retry(self, job_id: str) -> dict:
        return self._json("POST", f"/v1/jobs/{_quoted(job_id)}/retry")

    def result(self, job_id: str, dest: str | Path) -> Path:
        dest = Path(dest)
        with self._open("GET", f"/v1/jobs/{_quoted(job_id)}/result") as resp:
            with atomic_writer(dest, "wb") as out:
                while True:
                    block = resp.read(1 << 20)
                    if not block:
                        break
                    out.write(block)
        return dest

    def health(self) -> dict:
        return self._json("GET", "/v1/healthz")

    def metrics(self) -> dict:
        return self._json("GET", "/v1/metrics")


class LocalTransport:
    """The same verb surface served by an in-process
    :class:`~repro.service.http.ServiceAPI` — no server, no socket.

    ``repro jobs --spool`` rides on this, which is what keeps the CLI
    and the HTTP path behaviorally identical: both end in the same
    ``ServiceAPI`` methods and the same wire envelopes.
    """

    def __init__(self, api) -> None:
        self.api = api

    def _call(self, fn: Callable[[], tuple[int, dict]]) -> dict:
        from .http import ApiError

        try:
            status, envelope = fn()
        except ApiError as e:
            raise ServiceError(e.status, e.code, e.message) from None
        del status
        return envelope

    def submit(self, document: dict) -> dict:
        return self._call(lambda: self.api.submit(document))

    def get(self, job_id: str) -> dict:
        return self._call(lambda: self.api.get(job_id))

    def list(
        self, state: str | None = None, tenant: str | None = None
    ) -> dict:
        return self._call(lambda: self.api.list(state=state, tenant=tenant))

    def cancel(self, job_id: str) -> dict:
        return self._call(lambda: self.api.cancel(job_id))

    def retry(self, job_id: str) -> dict:
        return self._call(lambda: self.api.retry(job_id))

    def result(self, job_id: str, dest: str | Path) -> Path:
        from .http import ApiError

        dest = Path(dest)
        try:
            src = self.api.result_path(job_id)
        except ApiError as e:
            raise ServiceError(e.status, e.code, e.message) from None
        with open(src, "rb") as fh:
            with atomic_writer(dest, "wb") as out:
                while True:
                    block = fh.read(1 << 20)
                    if not block:
                        break
                    out.write(block)
        return dest

    def health(self) -> dict:
        return self._call(self.api.health)

    def metrics(self) -> dict:
        return self._call(self.api.metrics)


class JobsClient:
    """High-level, transport-agnostic job operations.

    Every envelope coming back through the transport is validated
    against the ``repro-job/1`` schema before anything is read out of
    it; a malformed response raises :class:`ServiceError` with code
    ``bad-envelope``.
    """

    def __init__(self, transport) -> None:
        self.transport = transport

    # -- envelope handling --------------------------------------------
    @staticmethod
    def _validated(envelope: dict, expect: str) -> dict:
        problems = wire.validate_envelope_dict(envelope)
        if not problems and expect not in envelope:
            problems = [f"expected a {expect} envelope"]
        if problems:
            raise ServiceError(
                502, "bad-envelope",
                "invalid service response: " + "; ".join(problems),
            )
        return envelope

    def _job(self, envelope: dict) -> Job:
        return Job(raw=self._validated(envelope, "job")["job"])

    # -- verbs --------------------------------------------------------
    def submit(
        self,
        spec: JobSpec,
        tenant: str = DEFAULT_TENANT,
        max_attempts: int = 3,
        job_id: str | None = None,
    ) -> Job:
        """Submit a job; idempotent even across transport retries.

        A retrying transport (HTTP) may re-POST a submit whose first
        response was lost *after* the server processed it.  To keep
        that from duplicating the job, the id is pre-generated
        client-side before the first attempt, so the replay collides —
        and a 409 conflict on an id we generated ourselves means the
        original submit landed, so the job is fetched and returned
        instead of surfacing the error.
        """
        generated = None
        if job_id is None and getattr(
            self.transport, "retries_submits", False
        ):
            job_id = generated = f"job-{uuid.uuid4().hex[:20]}"
        document = wire.submit_document(
            spec, tenant=tenant, max_attempts=max_attempts, job_id=job_id
        )
        try:
            return self._job(self.transport.submit(document))
        except ServiceError as e:
            if generated is not None and e.status == 409:
                return self.get(generated)
            raise

    def get(self, job_id: str) -> Job:
        return self._job(self.transport.get(job_id))

    def list(
        self, state: str | None = None, tenant: str | None = None
    ) -> tuple[list[Job], dict[str, int]]:
        envelope = self._validated(
            self.transport.list(state=state, tenant=tenant), "jobs"
        )
        jobs = [Job(raw=job) for job in envelope["jobs"]]
        return jobs, dict(envelope.get("counts", {}))

    def cancel(self, job_id: str) -> Job:
        return self._job(self.transport.cancel(job_id))

    def retry(self, job_id: str) -> Job:
        return self._job(self.transport.retry(job_id))

    def result(self, job_id: str, dest: str | Path) -> Path:
        return self.transport.result(job_id, dest)

    def wait(
        self,
        job_id: str,
        timeout: float | None = None,
        poll: float = 0.5,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> Job:
        """Poll until the job reaches a terminal state (or timeout).

        Raises :class:`TimeoutError` with the last observed state if
        ``timeout`` elapses first; transport retries already smooth
        over server restarts underneath this loop.  ``clock`` pairs
        with ``sleep`` so timeout behavior is deterministic under test
        (both default to real time).
        """
        deadline = None if timeout is None else clock() + timeout
        while True:
            job = self.get(job_id)
            if job.done:
                return job
            if deadline is not None and clock() >= deadline:
                raise TimeoutError(
                    f"{job_id} still {job.state} after {timeout}s"
                )
            sleep(poll)

    def health(self) -> dict[str, int]:
        envelope = self._validated(self.transport.health(), "health")
        return dict(envelope["health"]["counts"])

    def metrics(self) -> dict:
        envelope = self._validated(self.transport.metrics(), "metrics")
        return envelope["metrics"]
