"""Job specifications: what one durable correction job should do.

A :class:`JobSpec` is the JSON payload stored in the job store's
``spec`` column — everything the serve worker needs to run one
correction through the :mod:`repro.core.api` registry, and nothing
about *how* the run is scheduled (states, attempts, and leases belong
to :mod:`repro.service.store`).  Specs are deliberately plain data:
a job submitted today must still execute after a daemon restart, a
code upgrade, or under a different worker process on the spool host.

This module also owns the **``repro-job/1`` wire schema**: the
versioned JSON documents the HTTP API (:mod:`repro.service.http`), the
client (:mod:`repro.service.client`), and the store all round-trip
through.  Every wire document is an *envelope* —

``{"schema": "repro-job/1", "<payload key>": ...}``

with exactly one payload key out of ``submit`` (job submission
request), ``job`` (one job row), ``jobs`` (a listing, plus per-state
``counts``), ``error`` (machine-readable failure), ``health`` and
``metrics``.  Validation follows the ``repro-run-report/1`` pattern
(:mod:`repro.telemetry.report`): dependency-free, returns a list of
human-readable problems, and is exposed on the command line as
``python -m repro validate-job``.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import asdict, dataclass, field
from pathlib import Path

#: The only job kind today; the field exists so periodic-ingest or
#: cluster jobs can join the same store without a schema change.
KIND_CORRECT = "correct"

_VALID_ON_ERROR = ("raise", "skip")

#: Version tag carried by every wire document (requests *and*
#: responses); bump only with a parallel ``repro-job/2`` validator.
JOB_SCHEMA_VERSION = "repro-job/1"

#: Canonical job states as they appear on the wire.  The store derives
#: its state constants from the same vocabulary (a test pins the two
#: in sync) — the wire schema owns the names because clients must be
#: able to validate a payload without importing the store.
JOB_STATES = ("pending", "running", "succeeded", "failed", "cancelled")

#: Tenant jobs are filed under when the submitter names none.
DEFAULT_TENANT = "default"

#: Tenant names are path- and metric-safe identifiers.
_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


def validate_tenant(name: str) -> str:
    """Return ``name`` if it is a legal tenant id, else raise ValueError."""
    if not isinstance(name, str) or not _TENANT_RE.match(name):
        raise ValueError(
            f"tenant must match {_TENANT_RE.pattern}, got {name!r}"
        )
    return name


@dataclass(frozen=True)
class JobSpec:
    """One correction job: input FASTQ -> corrected FASTQ (+ report).

    Mirrors the ``repro correct`` CLI surface so ``repro jobs submit``
    and a direct command line describe identical work.
    """

    input: str
    output: str
    kind: str = KIND_CORRECT
    method: str = "reptile"
    k: int | None = None
    genome_length: int | None = None
    workers: int = 1
    chunk_size: int = 2048
    stream: bool = False
    max_memory: int | None = None
    on_error: str = "raise"
    #: Optional repro-run-report/1 JSON artifact path.
    report: str | None = None
    #: Free-form labels (tenant, experiment id, ...) carried verbatim.
    labels: dict = field(default_factory=dict)

    def validate(self) -> None:
        if self.kind != KIND_CORRECT:
            raise ValueError(f"unknown job kind {self.kind!r}")
        if not self.input or not self.output:
            raise ValueError("job spec needs both input and output paths")
        if self.on_error not in _VALID_ON_ERROR:
            raise ValueError(
                f"on_error must be one of {_VALID_ON_ERROR}, "
                f"got {self.on_error!r}"
            )
        if self.workers < 1 or self.chunk_size < 1:
            raise ValueError("workers and chunk_size must be >= 1")
        if self.stream and self.method != "reptile":
            raise ValueError(
                f"stream jobs support the reptile method only "
                f"(got {self.method!r})"
            )

    # -- serialization ------------------------------------------------
    def to_dict(self) -> dict:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, d: dict) -> "JobSpec":
        known = set(cls.__dataclass_fields__)
        unknown = set(d) - known
        if unknown:
            raise ValueError(
                f"unknown job-spec field(s): {', '.join(sorted(unknown))}"
            )
        spec = cls(**d)
        spec.validate()
        return spec

    @classmethod
    def from_json(cls, text: str) -> "JobSpec":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("job spec JSON must be an object")
        return cls.from_dict(data)

    # -- identity -----------------------------------------------------
    def fingerprint(self) -> str:
        """Spec + input-content hash: the resume key for checkpoints.

        A checkpoint written for one (spec, input bytes) pair must
        never seed the resume of a different one — a changed input
        file or flag silently producing a spliced output would violate
        the byte-identical guarantee.  Missing inputs hash as absent
        (the job will fail with a clear error at run time instead).
        """
        h = hashlib.sha256(self.to_json().encode("utf-8"))
        path = Path(self.input)
        if path.is_file():
            with open(path, "rb") as fh:
                while True:
                    block = fh.read(1 << 20)
                    if not block:
                        break
                    h.update(block)
        return h.hexdigest()

    def input_fingerprint(self) -> str:
        """Content hash of the input file alone (no spec fields).

        The warm-pool key: two jobs whose *inputs* are identical can
        share a fitted spectrum even when their output paths, worker
        counts, or report destinations differ.  Fields that change the
        fitted structures (k, method, genome_length, ...) are keyed
        separately by :meth:`repro.service.pool.SpectrumPool.key_for`.
        Missing inputs hash as absent, matching :meth:`fingerprint`.
        """
        h = hashlib.sha256()
        path = Path(self.input)
        if path.is_file():
            with open(path, "rb") as fh:
                while True:
                    block = fh.read(1 << 20)
                    if not block:
                        break
                    h.update(block)
        return h.hexdigest()


# ---------------------------------------------------------------------------
# repro-job/1 wire documents: builders
# ---------------------------------------------------------------------------

#: Envelope payload keys; every document carries exactly one (``jobs``
#: envelopes additionally carry ``counts``).
ENVELOPE_KEYS = ("submit", "job", "jobs", "error", "health", "metrics")

#: Keys of one job payload — exactly ``JobRecord.as_dict()``'s shape.
JOB_KEYS = (
    "id", "state", "tenant", "attempts", "claim_seq", "max_attempts",
    "not_before", "lease_owner", "lease_expires", "submitted_at",
    "started_at", "finished_at", "error", "result", "spec",
)

#: Documentation-oriented JSON-Schema rendering of the wire format
#: (the executable truth is the validators below, same split as
#: ``repro-run-report/1``).
JOB_JSON_SCHEMA: dict = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "$id": "https://repro.invalid/schemas/repro-job-1.json",
    "title": "repro-job/1 wire envelope",
    "type": "object",
    "required": ["schema"],
    "properties": {
        "schema": {"const": JOB_SCHEMA_VERSION},
        "submit": {
            "type": "object",
            "required": ["spec"],
            "properties": {
                "spec": {"type": "object"},
                "tenant": {"type": "string",
                           "pattern": _TENANT_RE.pattern},
                "max_attempts": {"type": "integer", "minimum": 1},
                "job_id": {"type": ["string", "null"]},
            },
            "additionalProperties": False,
        },
        "job": {"$ref": "#/$defs/job"},
        "jobs": {"type": "array", "items": {"$ref": "#/$defs/job"}},
        "counts": {"type": "object",
                   "additionalProperties": {"type": "integer"}},
        "error": {
            "type": "object",
            "required": ["code", "message"],
            "properties": {
                "code": {"type": "string"},
                "message": {"type": "string"},
            },
            "additionalProperties": False,
        },
        "health": {
            "type": "object",
            "required": ["status", "counts"],
            "properties": {
                "status": {"const": "ok"},
                "counts": {"type": "object"},
            },
        },
        "metrics": {
            "type": "object",
            "required": ["counters", "gauges"],
            "properties": {
                "counters": {"type": "object"},
                "gauges": {"type": "object"},
            },
        },
    },
    "$defs": {
        "job": {
            "type": "object",
            "required": list(JOB_KEYS),
            "properties": {
                "id": {"type": "string"},
                "state": {"enum": list(JOB_STATES)},
                "tenant": {"type": "string"},
                "attempts": {"type": "integer", "minimum": 0},
                "claim_seq": {"type": "integer", "minimum": 0},
                "max_attempts": {"type": "integer", "minimum": 1},
                "not_before": {"type": "number"},
                "lease_owner": {"type": ["string", "null"]},
                "lease_expires": {"type": ["number", "null"]},
                "submitted_at": {"type": "number"},
                "started_at": {"type": ["number", "null"]},
                "finished_at": {"type": ["number", "null"]},
                "error": {"type": ["string", "null"]},
                "result": {"type": ["object", "null"]},
                "spec": {"type": "object"},
            },
            "additionalProperties": False,
        },
    },
}


def submit_document(
    spec: "JobSpec | dict",
    tenant: str = DEFAULT_TENANT,
    max_attempts: int = 3,
    job_id: str | None = None,
) -> dict:
    """The repro-job/1 submission request for ``POST /v1/jobs``."""
    spec_dict = spec.to_dict() if isinstance(spec, JobSpec) else dict(spec)
    doc: dict = {
        "schema": JOB_SCHEMA_VERSION,
        "submit": {
            "spec": spec_dict,
            "tenant": tenant,
            "max_attempts": max_attempts,
        },
    }
    if job_id is not None:
        doc["submit"]["job_id"] = job_id
    return doc


def job_envelope(job: dict) -> dict:
    """Wrap one ``JobRecord.as_dict()`` payload for the wire."""
    return {"schema": JOB_SCHEMA_VERSION, "job": job}


def jobs_envelope(jobs: list[dict], counts: dict[str, int]) -> dict:
    """A job listing plus the store's per-state totals."""
    return {"schema": JOB_SCHEMA_VERSION, "jobs": jobs, "counts": counts}


def error_envelope(code: str, message: str) -> dict:
    """Machine-readable failure (HTTP 4xx/5xx bodies)."""
    return {
        "schema": JOB_SCHEMA_VERSION,
        "error": {"code": code, "message": message},
    }


def health_envelope(counts: dict[str, int]) -> dict:
    return {
        "schema": JOB_SCHEMA_VERSION,
        "health": {"status": "ok", "counts": counts},
    }


def metrics_envelope(snapshot: dict) -> dict:
    """Wrap a :meth:`MetricsRegistry.snapshot` dump for the wire."""
    counters = dict(snapshot.get("counters", {}))
    gauges = dict(snapshot.get("gauges", {}))
    return {
        "schema": JOB_SCHEMA_VERSION,
        "metrics": {"counters": counters, "gauges": gauges},
    }


# ---------------------------------------------------------------------------
# repro-job/1 wire documents: validators
# ---------------------------------------------------------------------------

def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _is_int(value: object) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def validate_job_dict(job: object, where: str = "job") -> list[str]:
    """Problems with one job payload (empty list = valid)."""
    if not isinstance(job, dict):
        return [f"{where}: expected an object, got {type(job).__name__}"]
    problems: list[str] = []
    missing = [k for k in JOB_KEYS if k not in job]
    if missing:
        problems.append(f"{where}: missing key(s): {', '.join(missing)}")
    unknown = sorted(set(job) - set(JOB_KEYS))
    if unknown:
        problems.append(f"{where}: unknown key(s): {', '.join(unknown)}")

    def bad(key: str, expected: str) -> None:
        problems.append(
            f"{where}.{key}: expected {expected}, "
            f"got {type(job[key]).__name__}"
        )

    if "id" in job and (not isinstance(job["id"], str) or not job["id"]):
        bad("id", "non-empty string")
    if "state" in job and job["state"] not in JOB_STATES:
        problems.append(
            f"{where}.state: {job['state']!r} not one of {JOB_STATES}"
        )
    if "tenant" in job:
        try:
            validate_tenant(job["tenant"])
        except ValueError as e:
            problems.append(f"{where}.tenant: {e}")
    for key, minimum in (("attempts", 0), ("claim_seq", 0),
                         ("max_attempts", 1)):
        if key in job:
            if not _is_int(job[key]):
                bad(key, "integer")
            elif job[key] < minimum:
                problems.append(f"{where}.{key}: must be >= {minimum}")
    for key in ("not_before", "submitted_at"):
        if key in job and not _is_number(job[key]):
            bad(key, "number")
    for key in ("lease_expires", "started_at", "finished_at"):
        if key in job and job[key] is not None and not _is_number(job[key]):
            bad(key, "number or null")
    for key in ("lease_owner", "error"):
        if key in job and job[key] is not None \
                and not isinstance(job[key], str):
            bad(key, "string or null")
    if "result" in job and job["result"] is not None \
            and not isinstance(job["result"], dict):
        bad("result", "object or null")
    if "spec" in job:
        if not isinstance(job["spec"], dict):
            bad("spec", "object")
        else:
            try:
                JobSpec.from_dict(job["spec"])
            except (TypeError, ValueError) as e:
                problems.append(f"{where}.spec: {e}")
    return problems


def _validate_submit_payload(submit: object) -> list[str]:
    if not isinstance(submit, dict):
        return [f"submit: expected an object, got {type(submit).__name__}"]
    problems: list[str] = []
    allowed = {"spec", "tenant", "max_attempts", "job_id"}
    unknown = sorted(set(submit) - allowed)
    if unknown:
        problems.append(f"submit: unknown key(s): {', '.join(unknown)}")
    if "spec" not in submit:
        problems.append("submit: missing required key: spec")
    elif not isinstance(submit["spec"], dict):
        problems.append("submit.spec: expected an object")
    else:
        try:
            JobSpec.from_dict(submit["spec"])
        except (TypeError, ValueError) as e:
            problems.append(f"submit.spec: {e}")
    if "tenant" in submit:
        try:
            validate_tenant(submit["tenant"])
        except ValueError as e:
            problems.append(f"submit.tenant: {e}")
    if "max_attempts" in submit:
        if not _is_int(submit["max_attempts"]):
            problems.append("submit.max_attempts: expected integer")
        elif submit["max_attempts"] < 1:
            problems.append("submit.max_attempts: must be >= 1")
    if "job_id" in submit and submit["job_id"] is not None \
            and not isinstance(submit["job_id"], str):
        problems.append("submit.job_id: expected string or null")
    return problems


def validate_envelope_dict(data: object) -> list[str]:
    """Problems with any repro-job/1 wire document (empty = valid)."""
    if not isinstance(data, dict):
        return [f"expected a JSON object, got {type(data).__name__}"]
    problems: list[str] = []
    if data.get("schema") != JOB_SCHEMA_VERSION:
        problems.append(
            f"schema: expected {JOB_SCHEMA_VERSION!r}, "
            f"got {data.get('schema')!r}"
        )
    payloads = [k for k in ENVELOPE_KEYS if k in data]
    if len(payloads) != 1:
        problems.append(
            "envelope must carry exactly one of "
            f"{ENVELOPE_KEYS}, got {payloads or 'none'}"
        )
        return problems
    kind = payloads[0]
    extra_ok = {"schema", kind} | ({"counts"} if kind == "jobs" else set())
    unknown = sorted(set(data) - extra_ok)
    if unknown:
        problems.append(f"unknown envelope key(s): {', '.join(unknown)}")

    if kind == "submit":
        problems.extend(_validate_submit_payload(data["submit"]))
    elif kind == "job":
        problems.extend(validate_job_dict(data["job"]))
    elif kind == "jobs":
        if not isinstance(data["jobs"], list):
            problems.append("jobs: expected an array")
        else:
            for i, job in enumerate(data["jobs"]):
                problems.extend(validate_job_dict(job, where=f"jobs[{i}]"))
        counts = data.get("counts")
        if counts is not None:
            if not isinstance(counts, dict) or not all(
                isinstance(k, str) and _is_int(v)
                for k, v in counts.items()
            ):
                problems.append("counts: expected {state: integer}")
    elif kind == "error":
        err = data["error"]
        if not isinstance(err, dict) or set(err) != {"code", "message"} \
                or not all(isinstance(err[k], str)
                           for k in ("code", "message")):
            problems.append("error: expected {code: str, message: str}")
    elif kind == "health":
        health = data["health"]
        if not isinstance(health, dict) or health.get("status") != "ok" \
                or not isinstance(health.get("counts"), dict):
            problems.append("health: expected {status: 'ok', counts: {...}}")
    elif kind == "metrics":
        metrics = data["metrics"]
        if not isinstance(metrics, dict) \
                or not isinstance(metrics.get("counters"), dict) \
                or not isinstance(metrics.get("gauges"), dict):
            problems.append(
                "metrics: expected {counters: {...}, gauges: {...}}"
            )
    return problems


def validate_job_file(path: str | Path) -> list[str]:
    """Validate one JSON file holding a repro-job/1 document."""
    try:
        with open(path, "rt", encoding="utf-8") as fh:
            data = json.load(fh)
    except OSError as e:
        return [f"cannot read file: {e}"]
    except ValueError as e:
        return [f"not valid JSON: {e}"]
    return validate_envelope_dict(data)


def main(argv: list[str] | None = None) -> int:
    """``python -m repro validate-job`` — check wire documents."""
    import argparse
    import sys

    p = argparse.ArgumentParser(
        prog="repro-validate-job",
        description="Validate JSON documents against the repro-job/1 "
                    "wire schema (submissions, job envelopes, listings).",
    )
    p.add_argument("documents", nargs="*", type=Path,
                   help="JSON files to validate")
    p.add_argument("--print-schema", action="store_true",
                   help="print the JSON-Schema document and exit")
    p.add_argument("-q", "--quiet", action="store_true",
                   help="suppress per-file OK lines (problems always print)")
    args = p.parse_args(argv)
    if args.print_schema:
        print(json.dumps(JOB_JSON_SCHEMA, indent=2))
        return 0
    if not args.documents:
        print("no documents given", file=sys.stderr)
        return 2
    failed = 0
    for path in args.documents:
        problems = validate_job_file(path)
        if problems:
            failed += 1
            print(f"INVALID {path}", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
        elif not args.quiet:
            print(f"ok {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
