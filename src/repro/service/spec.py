"""Job specifications: what one durable correction job should do.

A :class:`JobSpec` is the JSON payload stored in the job store's
``spec`` column — everything the serve worker needs to run one
correction through the :mod:`repro.core.api` registry, and nothing
about *how* the run is scheduled (states, attempts, and leases belong
to :mod:`repro.service.store`).  Specs are deliberately plain data:
a job submitted today must still execute after a daemon restart, a
code upgrade, or under a different worker process on the spool host.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

#: The only job kind today; the field exists so periodic-ingest or
#: cluster jobs can join the same store without a schema change.
KIND_CORRECT = "correct"

_VALID_ON_ERROR = ("raise", "skip")


@dataclass(frozen=True)
class JobSpec:
    """One correction job: input FASTQ -> corrected FASTQ (+ report).

    Mirrors the ``repro correct`` CLI surface so ``repro jobs submit``
    and a direct command line describe identical work.
    """

    input: str
    output: str
    kind: str = KIND_CORRECT
    method: str = "reptile"
    k: int | None = None
    genome_length: int | None = None
    workers: int = 1
    chunk_size: int = 2048
    stream: bool = False
    max_memory: int | None = None
    on_error: str = "raise"
    #: Optional repro-run-report/1 JSON artifact path.
    report: str | None = None
    #: Free-form labels (tenant, experiment id, ...) carried verbatim.
    labels: dict = field(default_factory=dict)

    def validate(self) -> None:
        if self.kind != KIND_CORRECT:
            raise ValueError(f"unknown job kind {self.kind!r}")
        if not self.input or not self.output:
            raise ValueError("job spec needs both input and output paths")
        if self.on_error not in _VALID_ON_ERROR:
            raise ValueError(
                f"on_error must be one of {_VALID_ON_ERROR}, "
                f"got {self.on_error!r}"
            )
        if self.workers < 1 or self.chunk_size < 1:
            raise ValueError("workers and chunk_size must be >= 1")
        if self.stream and self.method != "reptile":
            raise ValueError(
                f"stream jobs support the reptile method only "
                f"(got {self.method!r})"
            )

    # -- serialization ------------------------------------------------
    def to_dict(self) -> dict:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, d: dict) -> "JobSpec":
        known = set(cls.__dataclass_fields__)
        unknown = set(d) - known
        if unknown:
            raise ValueError(
                f"unknown job-spec field(s): {', '.join(sorted(unknown))}"
            )
        spec = cls(**d)
        spec.validate()
        return spec

    @classmethod
    def from_json(cls, text: str) -> "JobSpec":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("job spec JSON must be an object")
        return cls.from_dict(data)

    # -- identity -----------------------------------------------------
    def fingerprint(self) -> str:
        """Spec + input-content hash: the resume key for checkpoints.

        A checkpoint written for one (spec, input bytes) pair must
        never seed the resume of a different one — a changed input
        file or flag silently producing a spliced output would violate
        the byte-identical guarantee.  Missing inputs hash as absent
        (the job will fail with a clear error at run time instead).
        """
        h = hashlib.sha256(self.to_json().encode("utf-8"))
        path = Path(self.input)
        if path.is_file():
            with open(path, "rb") as fh:
                while True:
                    block = fh.read(1 << 20)
                    if not block:
                        break
                    h.update(block)
        return h.hexdigest()
