"""Warm shared-spectrum pool: repeat jobs skip the accumulation pass.

Building a corrector is the dominant fixed cost of a correction job —
the k-mer spectrum and tile tables are accumulated from every read
before a single base is corrected.  In a serving deployment the same
genome is corrected over and over (new read batches, re-runs, report
regeneration), so :class:`SpectrumPool` caches *fitted correctors*
keyed by everything that determines the fitted structures:

``(input fingerprint, method, k, genome_length, stream, on_error)``

- **Input fingerprint** is the content hash of the input FASTQ alone
  (:meth:`repro.service.spec.JobSpec.input_fingerprint`) — output
  paths, worker counts, chunk sizes, and report destinations do not
  fragment the pool.
- **Bounded LRU, bytes budget.** Entry sizes are measured by walking
  the fitted corrector for numpy arrays (spectrum codes/counts, tile
  tables, Bloom prefilter bits) and summing ``nbytes``; least recently
  used entries are evicted until both the byte budget and the entry
  cap hold.  An entry larger than the whole budget is returned to its
  builder but never retained.
- **One build per key.** Concurrent workers asking for the same key
  coordinate through a per-key build latch: exactly one builds, the
  rest wait and take the cache hit.  A failed build releases the latch
  so a later attempt can retry.
- **Fork-safe COW handoff.** Entries are never mutated after insert;
  forked correction workers inherit the arrays copy-on-write exactly
  like the parallel engine's ``_WORKER_STATE`` handoff, so a pool hit
  costs no copying.  (The per-instance tile memo cache warms across
  jobs in the serving process — its exactness contract is
  per-decision, so results stay byte-identical; see
  docs/performance.md.)

Hit/miss/evict counters feed job reports and ``GET /v1/metrics``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable

from .spec import JobSpec

__all__ = ["PoolKey", "PoolEntry", "SpectrumPool", "estimate_nbytes"]

#: Hashable cache key; see module docstring for the fields.
PoolKey = tuple


def estimate_nbytes(obj: Any, _depth: int = 0, _seen: set | None = None) -> int:
    """Sum ``nbytes`` of every numpy array reachable from ``obj``.

    A bounded structural walk (attribute dicts, sequences, mappings, a
    few levels deep) rather than a corrector-specific inventory, so new
    corrector fields are counted without pool changes.  Python-object
    overhead is ignored: the arrays *are* the memory story here.
    """
    if _seen is None:
        _seen = set()
    if id(obj) in _seen or _depth > 4:
        return 0
    _seen.add(id(obj))
    nbytes = getattr(obj, "nbytes", None)
    if isinstance(nbytes, int) and hasattr(obj, "dtype"):
        return int(nbytes)
    total = 0
    if isinstance(obj, dict):
        for value in obj.values():
            total += estimate_nbytes(value, _depth + 1, _seen)
        return total
    if isinstance(obj, (list, tuple)):
        for value in obj:
            total += estimate_nbytes(value, _depth + 1, _seen)
        return total
    attrs = getattr(obj, "__dict__", None)
    if isinstance(attrs, dict):
        for value in attrs.values():
            total += estimate_nbytes(value, _depth + 1, _seen)
    return total


@dataclass(frozen=True)
class PoolEntry:
    """One cached fitted corrector plus its build-time metadata.

    ``meta`` carries whatever the builder needs to replay on a hit —
    the stream runner stores the pass-A read count there so a warm job
    can skip the scan entirely.  Frozen: entries are shared across
    threads and forked workers and must never be mutated in place.
    """

    key: PoolKey
    corrector: Any
    nbytes: int
    meta: dict = field(default_factory=dict)


class SpectrumPool:
    """Thread-safe bounded LRU of fitted correctors.

    ``max_bytes`` bounds the summed array payload; ``max_entries``
    bounds count (useful when inputs are tiny and the byte budget
    alone would let thousands of entries accumulate).
    """

    def __init__(
        self,
        max_bytes: int = 1 << 30,
        max_entries: int = 8,
    ) -> None:
        if max_bytes < 0 or max_entries < 0:
            raise ValueError("max_bytes and max_entries must be >= 0")
        self.max_bytes = int(max_bytes)
        self.max_entries = int(max_entries)
        self._lock = threading.Lock()
        self._entries: OrderedDict[PoolKey, PoolEntry] = OrderedDict()
        self._bytes = 0
        self._building: dict[PoolKey, threading.Event] = {}
        self._counters = {"hits": 0, "misses": 0, "evictions": 0}

    # -- keys ---------------------------------------------------------
    @staticmethod
    def key_for(spec: JobSpec) -> PoolKey:
        """The cache key for a job spec (hashes the input file).

        ``stream`` is part of the key even though streamed and batch
        fits are bitwise-equivalent — the cached *metadata* differs
        (stream entries carry pass-A state) and conservatism is free
        here.  ``on_error`` changes which reads survive parsing, so it
        changes the fitted structures.
        """
        return (
            spec.input_fingerprint(),
            spec.method,
            spec.k,
            spec.genome_length,
            bool(spec.stream),
            spec.on_error,
        )

    # -- cache mechanics ----------------------------------------------
    def _evict_over_budget_locked(self) -> None:
        while self._entries and (
            self._bytes > self.max_bytes
            or len(self._entries) > self.max_entries
        ):
            _key, entry = self._entries.popitem(last=False)
            self._bytes -= entry.nbytes
            self._counters["evictions"] += 1

    def _lookup(self, key: PoolKey) -> PoolEntry | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._counters["hits"] += 1
            return entry

    def get_or_build(
        self,
        key: PoolKey,
        builder: Callable[[], tuple[Any, dict]],
    ) -> tuple[PoolEntry, bool]:
        """Return ``(entry, hit)``; build (once) on miss.

        ``builder`` runs *outside* the pool lock (builds take seconds)
        and returns ``(corrector, meta)``.  Concurrent callers with
        the same key wait on the builder's latch and then take the
        hit path; if the build raises, one waiter is released to
        retry the build itself.
        """
        while True:
            entry = self._lookup(key)
            if entry is not None:
                return entry, True
            with self._lock:
                # Re-check under the lock: a builder may have finished
                # between the miss and here.
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    self._counters["hits"] += 1
                    return entry, True
                latch = self._building.get(key)
                if latch is None:
                    self._building[key] = threading.Event()
                    break
            latch.wait()
        try:
            corrector, meta = builder()
            entry = PoolEntry(
                key=key,
                corrector=corrector,
                nbytes=estimate_nbytes(corrector),
                meta=dict(meta),
            )
            with self._lock:
                self._counters["misses"] += 1
                if entry.nbytes <= self.max_bytes and self.max_entries > 0:
                    self._entries[key] = entry
                    self._entries.move_to_end(key)
                    self._bytes += entry.nbytes
                    self._evict_over_budget_locked()
            return entry, False
        finally:
            with self._lock:
                latch = self._building.pop(key, None)
            if latch is not None:
                latch.set()

    # -- introspection ------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Counters plus current occupancy, one serializable dict."""
        with self._lock:
            return {
                **self._counters,
                "entries": len(self._entries),
                "bytes": self._bytes,
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0
