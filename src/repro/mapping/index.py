"""Seed index over a reference genome.

Maps every packed s-mer of the genome to its occurrence positions,
stored CSR-style (sorted unique seed codes + position lists) so batch
lookups are two ``searchsorted`` calls.
"""

from __future__ import annotations

import numpy as np

from ..seq.encoding import kmer_codes_from_sequence, valid_kmer_mask


class GenomeSeedIndex:
    """Positions of every s-mer in a genome, queryable in batch."""

    def __init__(self, genome_codes: np.ndarray, seed_length: int):
        self.seed_length = int(seed_length)
        genome_codes = np.asarray(genome_codes, dtype=np.uint8)
        self.genome_codes = genome_codes
        safe = np.where(genome_codes < 4, genome_codes, 0)
        codes = kmer_codes_from_sequence(safe, self.seed_length)
        valid = valid_kmer_mask(genome_codes[None, :], self.seed_length)[0]
        positions = np.flatnonzero(valid).astype(np.int64)
        codes = codes[valid]
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]
        self._positions = positions[order]
        self._unique, self._starts = np.unique(sorted_codes, return_index=True)
        self._ends = np.append(self._starts[1:], sorted_codes.size)

    @property
    def genome_length(self) -> int:
        return self.genome_codes.size

    def lookup_ranges(self, seed_codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(start, end)`` slices into the position list per query seed
        (empty range for absent seeds)."""
        seed_codes = np.asarray(seed_codes, dtype=np.uint64)
        if self._unique.size == 0:
            z = np.zeros(seed_codes.shape, dtype=np.int64)
            return z, z
        idx = np.searchsorted(self._unique, seed_codes)
        idx_c = np.minimum(idx, self._unique.size - 1)
        found = self._unique[idx_c] == seed_codes
        starts = np.where(found, self._starts[idx_c], 0)
        ends = np.where(found, self._ends[idx_c], 0)
        return starts.astype(np.int64), ends.astype(np.int64)

    def positions_for_range(self, start: int, end: int) -> np.ndarray:
        return self._positions[start:end]

    @property
    def position_list(self) -> np.ndarray:
        """The full CSR position array (used by batch expansion)."""
        return self._positions
