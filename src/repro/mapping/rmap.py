"""RMAP-like short read mapper (Smith et al. 2008, as used in the thesis).

Pigeonhole mapping: a read with at most ``m`` mismatches against its
true origin contains at least one exact seed among ``m+1`` disjoint
seeds, so candidate positions come from seed-index hits and are then
verified by a full Hamming comparison.  Reads are classified as
*uniquely mapped* (a single best location), *ambiguously mapped*
(tied best locations — repeats), or *unmapped*, exactly the categories
of Table 2.2.  Everything is batched: candidate expansion, genome
gathering, and mismatch counting are single vectorized passes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..io.readset import ReadSet
from ..seq.alphabet import reverse_complement_codes
from ..seq.encoding import kmer_codes_from_reads
from .index import GenomeSeedIndex

#: Per-read mapping status codes.
UNMAPPED = 0
UNIQUE = 1
AMBIGUOUS = 2


@dataclass
class MappingResult:
    """Outcome of mapping a read set against a genome."""

    status: np.ndarray  # (n,) UNMAPPED/UNIQUE/AMBIGUOUS
    position: np.ndarray  # (n,) best genome position (-1 if unmapped)
    strand: np.ndarray  # (n,) +1 / -1 (0 if unmapped)
    mismatches: np.ndarray  # (n,) mismatch count at best hit (-1 if unmapped)

    @property
    def n_reads(self) -> int:
        return self.status.size

    def fraction_unique(self) -> float:
        return float((self.status == UNIQUE).mean()) if self.n_reads else 0.0

    def fraction_ambiguous(self) -> float:
        return float((self.status == AMBIGUOUS).mean()) if self.n_reads else 0.0

    def fraction_unmapped(self) -> float:
        return float((self.status == UNMAPPED).mean()) if self.n_reads else 0.0

    def summary(self) -> dict:
        return {
            "n_reads": self.n_reads,
            "unique": self.fraction_unique(),
            "ambiguous": self.fraction_ambiguous(),
            "unmapped": self.fraction_unmapped(),
        }


def _candidates_for_block(
    block: np.ndarray,
    index: GenomeSeedIndex,
    max_mismatches: int,
) -> tuple[np.ndarray, np.ndarray]:
    """(read_row, genome_position) candidate pairs for one orientation
    of a uniform-length read block, deduplicated."""
    n, length = block.shape
    s = index.seed_length
    n_seeds = max_mismatches + 1
    glen = index.genome_length

    safe = np.where(block < 4, block, 0)
    kcodes = kmer_codes_from_reads(safe, s)  # (n, length - s + 1)

    rows_list: list[np.ndarray] = []
    pos_list: list[np.ndarray] = []
    for j in range(n_seeds):
        off = j * s
        if off + s > length:
            break
        seeds = kcodes[:, off]
        starts, ends = index.lookup_ranges(seeds)
        counts = ends - starts
        total = int(counts.sum())
        if total == 0:
            continue
        read_rows = np.repeat(np.arange(n), counts)
        # Flatten CSR ranges: for each query, positions[starts:ends].
        flat = np.concatenate(
            [index.position_list[a:b] for a, b in zip(starts, ends) if b > a]
        )
        cand_pos = flat - off
        ok = (cand_pos >= 0) & (cand_pos + length <= glen)
        rows_list.append(read_rows[ok])
        pos_list.append(cand_pos[ok])

    if not rows_list:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    rows = np.concatenate(rows_list)
    pos = np.concatenate(pos_list)
    # Deduplicate (row, pos) pairs from multiple seed hits.
    key = rows * np.int64(glen + 1) + pos
    _, keep = np.unique(key, return_index=True)
    return rows[keep], pos[keep]


def map_reads(
    reads: ReadSet,
    genome_codes: np.ndarray,
    max_mismatches: int = 2,
    both_strands: bool = True,
    index: GenomeSeedIndex | None = None,
    seed_length: int | None = None,
) -> MappingResult:
    """Map every read, allowing up to ``max_mismatches`` substitutions.

    Ambiguous bases (N) in reads count as mismatches at verification.
    ``seed_length`` defaults to ``min_read_length // (m+1)`` (capped at
    16); pass an ``index`` to reuse one across calls with the same seed
    length.
    """
    genome_codes = np.asarray(genome_codes, dtype=np.uint8)
    n = reads.n_reads
    status = np.zeros(n, dtype=np.int8)
    best_pos = np.full(n, -1, dtype=np.int64)
    best_strand = np.zeros(n, dtype=np.int8)
    best_mm = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return MappingResult(status, best_pos, best_strand, best_mm)

    min_len = int(reads.lengths.min())
    if seed_length is None:
        seed_length = max(4, min(16, min_len // (max_mismatches + 1)))
    if index is None:
        index = GenomeSeedIndex(genome_codes, seed_length)
    elif index.seed_length != seed_length:
        raise ValueError("provided index has a different seed length")

    for ln in np.unique(reads.lengths):
        if ln < index.seed_length:
            continue
        rows = np.flatnonzero(reads.lengths == ln)
        block = reads.codes[rows, :ln]
        orientations = [(block, 1)]
        if both_strands:
            orientations.append((reverse_complement_codes(block), -1))

        # Collect all verified hits of this block across orientations.
        hit_rows: list[np.ndarray] = []
        hit_pos: list[np.ndarray] = []
        hit_mm: list[np.ndarray] = []
        hit_strand: list[np.ndarray] = []
        for oriented, strand in orientations:
            crows, cpos = _candidates_for_block(oriented, index, max_mismatches)
            if crows.size == 0:
                continue
            gather = cpos[:, None] + np.arange(ln)[None, :]
            ref = genome_codes[gather]
            mm = np.count_nonzero(oriented[crows] != ref, axis=1)
            ok = mm <= max_mismatches
            hit_rows.append(crows[ok])
            hit_pos.append(cpos[ok])
            hit_mm.append(mm[ok])
            hit_strand.append(np.full(int(ok.sum()), strand, dtype=np.int8))
        if not hit_rows:
            continue
        hrows = np.concatenate(hit_rows)
        hpos = np.concatenate(hit_pos)
        hmm = np.concatenate(hit_mm)
        hstrand = np.concatenate(hit_strand)

        # Per read: find minimal-mismatch hits, count ties.
        order = np.lexsort((hpos, hmm, hrows))
        hrows, hpos, hmm, hstrand = (
            hrows[order],
            hpos[order],
            hmm[order],
            hstrand[order],
        )
        first = np.ones(hrows.size, dtype=bool)
        first[1:] = hrows[1:] != hrows[:-1]
        first_idx = np.flatnonzero(first)
        # Count hits per read tied at the minimum mismatch value.
        group_end = np.append(first_idx[1:], hrows.size)
        for fi, ge in zip(first_idx, group_end):
            r = int(hrows[fi])
            m0 = hmm[fi]
            ties = int(np.count_nonzero(hmm[fi:ge] == m0))
            gi = rows[r]
            best_pos[gi] = hpos[fi]
            best_strand[gi] = hstrand[fi]
            best_mm[gi] = m0
            status[gi] = UNIQUE if ties == 1 else AMBIGUOUS
    return MappingResult(status, best_pos, best_strand, best_mm)


def aligned_true_codes(
    reads: ReadSet,
    genome_codes: np.ndarray,
    result: MappingResult,
) -> tuple[np.ndarray, np.ndarray]:
    """Genome-derived 'true' codes for uniquely mapped reads.

    Returns ``(read_rows, true_codes)`` where ``true_codes[i]`` is the
    genome substring under read ``read_rows[i]``, oriented like the
    read — the input to positional error-model estimation (Sec. 3.4.1).
    Only uniform-length uniquely mapped reads are returned.
    """
    genome_codes = np.asarray(genome_codes, dtype=np.uint8)
    unique_rows = np.flatnonzero(result.status == UNIQUE)
    if unique_rows.size == 0:
        return unique_rows, np.empty((0, 0), dtype=np.uint8)
    ln = int(reads.lengths[unique_rows[0]])
    unique_rows = unique_rows[reads.lengths[unique_rows] == ln]
    pos = result.position[unique_rows]
    gather = pos[:, None] + np.arange(ln)[None, :]
    true = genome_codes[gather]
    rev = result.strand[unique_rows] == -1
    if rev.any():
        true[rev] = reverse_complement_codes(true[rev])
    return unique_rows, true
