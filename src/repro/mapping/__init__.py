"""RMAP-like read mapping substrate (evaluation + error estimation)."""

from .index import GenomeSeedIndex
from .rmap import (
    AMBIGUOUS,
    UNIQUE,
    UNMAPPED,
    MappingResult,
    aligned_true_codes,
    map_reads,
)

__all__ = [
    "GenomeSeedIndex",
    "MappingResult",
    "map_reads",
    "aligned_true_codes",
    "UNMAPPED",
    "UNIQUE",
    "AMBIGUOUS",
]
