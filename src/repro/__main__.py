"""``python -m repro`` — the unified command-line entry point.

One console surface over every tool::

    python -m repro simulate out/ --genome-length 20000
    python -m repro correct out/reads.fastq out/corrected.fastq \\
        --workers 4 --report run.json
    python -m repro cluster sample.fastq clusters/ --progress
    python -m repro assemble out/corrected.fastq out/contigs.fasta
    python -m repro validate-report run.json

Every subcommand keeps its full parser (``python -m repro correct
--help``), including the shared reliability / parallel / telemetry
flag groups from :mod:`repro.tools.common`.  The legacy
``python -m repro.tools.<name>`` module entry points still work and
forward here with a deprecation note.
"""

from __future__ import annotations

import importlib
import sys

from . import __version__

#: subcommand -> module exposing ``main(argv) -> int``.
COMMANDS: dict[str, tuple[str, str]] = {
    "simulate": ("repro.tools.simulate", "simulate a reference genome and reads"),
    "correct": ("repro.tools.correct", "error-correct a FASTQ file"),
    "cluster": ("repro.tools.cluster", "CLOSET-cluster a read set"),
    "assemble": ("repro.tools.assemble", "unitig-assemble corrected reads"),
    "validate-report": (
        "repro.telemetry.validate",
        "validate run-report JSON against the schema",
    ),
    "lint": (
        "repro.analysis.cli",
        "static analysis: determinism / resources / fork safety",
    ),
    "serve": (
        "repro.service.serve",
        "run a durable correction job worker over a spool",
    ),
    "serve-http": (
        "repro.service.http",
        "serve the HTTP/JSON job API (plus embedded workers)",
    ),
    "jobs": (
        "repro.service.cli",
        "submit / inspect / retry durable correction jobs",
    ),
    "validate-job": (
        "repro.service.spec",
        "validate repro-job/1 wire JSON against the schema",
    ),
}


def _usage() -> str:
    lines = [
        "usage: python -m repro <command> [options]",
        "",
        "commands:",
    ]
    for name, (_mod, help_text) in COMMANDS.items():
        lines.append(f"  {name:<17s} {help_text}")
    lines += [
        "",
        "run `python -m repro <command> --help` for per-command options",
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if not argv:
        print(_usage(), file=sys.stderr)
        return 2
    head = argv[0]
    if head in ("-h", "--help", "help"):
        print(_usage())
        return 0
    if head in ("-V", "--version"):
        print(f"repro {__version__}")
        return 0
    if head not in COMMANDS:
        print(f"unknown command {head!r}\n\n{_usage()}", file=sys.stderr)
        return 2
    module = importlib.import_module(COMMANDS[head][0])
    return module.main(argv[1:])


if __name__ == "__main__":
    raise SystemExit(main())
