"""Extension — indel-aware correction of 454 pyrosequencing reads.

Open issue #4 (Sec. 1.2): 454 reads carry homopolymer-biased
insertion/deletion errors Hamming-only correctors cannot touch.  The
SHREC 454 extension (Salmela 2010, described in the thesis) repairs
them, scored against substitution-only SHREC.

Two metrics matter.  Mean edit distance falls under *both* correctors
— a Hamming-only corrector responds to an indel by rewriting the
frame-shifted suffix base by base, which edit distance rewards.  But
only the indel-aware repair can restore a read's true *length*, so the
discriminating metric is the fraction of reads restored exactly.
"""

import numpy as np
from conftest import print_rows

from repro.baselines import Shrec454Corrector, ShrecCorrector, ShrecParams
from repro.seq import mean_edit_distance
from repro.simulate import random_genome, simulate_454_reads

N_SCORE = 400


def test_454_indel_correction(benchmark):
    genome = random_genome(15_000, np.random.default_rng(0))
    sim = simulate_454_reads(
        genome, 5000, np.random.default_rng(1), read_length_mean=110
    )
    params = ShrecParams(levels=(17,), alpha=4.0, genome_length=15_000)

    def _score(read_set):
        pairs = [
            (read_set.read_codes(i), sim.true_fragments[i])
            for i in range(N_SCORE)
        ]
        exact = sum(
            1
            for a, b in pairs
            if a.size == b.size and (a == b).all()
        )
        return mean_edit_distance(pairs), exact / N_SCORE

    def run():
        before, exact_before = _score(sim.reads)

        sub_only = ShrecCorrector(sim.reads, params)
        sub_out = sub_only.correct(sim.reads.subset(np.arange(N_SCORE)))
        after_sub, exact_sub = _score(sub_out)

        indel = Shrec454Corrector(sim.reads, params)
        indel_out = indel.correct_variable(
            sim.reads.subset(np.arange(N_SCORE))
        )
        after_indel, exact_indel = _score(indel_out)
        return [
            {
                "reads": "raw 454",
                "mean_edit_distance": round(before, 3),
                "exact_fraction": round(exact_before, 3),
            },
            {
                "reads": "substitution-only SHREC",
                "mean_edit_distance": round(after_sub, 3),
                "exact_fraction": round(exact_sub, 3),
            },
            {
                "reads": "indel-aware SHREC-454",
                "mean_edit_distance": round(after_indel, 3),
                "exact_fraction": round(exact_indel, 3),
            },
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_rows("Extension: 454 indel correction", rows)
    by = {r["reads"]: r for r in rows}
    raw = by["raw 454"]
    sub = by["substitution-only SHREC"]
    indel = by["indel-aware SHREC-454"]
    # Both correctors cut the edit distance...
    assert indel["mean_edit_distance"] < raw["mean_edit_distance"] * 0.85
    # ...but only the indel-aware repair restores reads exactly: it
    # fixes lengths, which substitutions cannot.
    assert indel["exact_fraction"] > sub["exact_fraction"]
    assert indel["exact_fraction"] > raw["exact_fraction"]
