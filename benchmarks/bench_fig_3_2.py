"""Fig 3.2 — log10(FP+FN) vs threshold, Y-based vs T-based scores.

Paper shape: U-shaped curves everywhere; the T curves sit at or below
the Y curve across a wide threshold band, are flatter around their
minimum (success less dependent on the threshold choice), and are
shifted leftward (small thresholds already work well).
"""

import numpy as np
from conftest import print_rows

from repro.experiments.chapter3 import run_fig_3_2


def test_fig_3_2(benchmark, ch3_core):
    datasets = {"D2": ch3_core["D2"]}
    curves = benchmark.pedantic(
        run_fig_3_2,
        args=(datasets,),
        kwargs={"k": 10},
        rounds=1,
        iterations=1,
    )["D2"]
    thrs = curves["_thresholds"]
    rows = []
    for i in range(0, thrs.size, max(1, thrs.size // 16)):
        rows.append(
            {
                "threshold": round(float(thrs[i]), 1),
                **{
                    lbl: round(float(curves[lbl][i]), 2)
                    for lbl in ("Y", "tIED", "wIED", "tUED", "wUED")
                },
            }
        )
    print_rows("Fig 3.2 (reproduction): log10(FP+FN) vs threshold, D2", rows)

    y = curves["Y"]
    t = curves["tIED"]
    # Both are U-shaped: interior minimum below both endpoints.
    for c in (y, t):
        assert c.min() < c[0] and c.min() < c[-1]
    # T's minimum beats Y's.
    assert t.min() < y.min()
    # Flat bottom, the paper's phrasing: 'a wider range of thresholds
    # often beat even the minimum error obtained under Y thresholding'.
    beats_y_min = int((t <= y.min()).sum())
    assert beats_y_min >= 5, beats_y_min
    # Leftward shift: at small thresholds T already beats Y's best.
    small = thrs <= np.quantile(thrs, 0.25)
    assert t[small].min() <= y.min()
