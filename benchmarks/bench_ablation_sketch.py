"""Ablation — sketch rounds and density vs candidate recall (Sec. 4.5.2).

The thesis argues that (a) multiple sketch rounds exponentially shrink
the chance a similar pair is never proposed, and (b) sketch density
1/M trades run time for recall with 'minor effect on quality'.  We
measure candidate recall against exhaustive all-pairs evaluation on a
small sample.
"""

import numpy as np
from conftest import print_rows

from repro.core.closet import SketchParams, build_edges, kmer_containment, read_hash_sets

N_READS = 250
CMIN = 0.6


def _exhaustive_edges(reads, k):
    hsets = read_hash_sets(reads, k)
    edges = set()
    for i in range(len(hsets)):
        for j in range(i + 1, len(hsets)):
            if kmer_containment(hsets[i], hsets[j]) >= CMIN:
                edges.add((i, j))
    return edges


def test_ablation_sketch_rounds(benchmark, ch4_samples_fixture):
    reads = ch4_samples_fixture["small"].reads.subset(np.arange(N_READS))
    k = 15

    def run_all():
        truth = _exhaustive_edges(reads, k)
        rows = []
        for rounds in (1, 2, 3):
            for modulus in (12, 24):
                params = SketchParams(
                    k=k, modulus=modulus, rounds=rounds, cmax=200, cmin=CMIN
                )
                res = build_edges(reads, params)
                found = set(map(tuple, res.edges.tolist()))
                recall = len(found & truth) / max(len(truth), 1)
                rows.append(
                    {
                        "rounds": rounds,
                        "modulus": modulus,
                        "candidates": res.n_unique,
                        "confirmed": res.n_confirmed,
                        "recall": round(recall, 4),
                    }
                )
        return rows, len(truth)

    rows, n_truth = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_rows(
        f"Ablation: sketch rounds/density vs recall ({n_truth} true edges)",
        rows,
    )
    by = {(r["rounds"], r["modulus"]): r for r in rows}
    # Recall improves (or holds) with more rounds at fixed density.
    assert by[(3, 24)]["recall"] >= by[(1, 24)]["recall"]
    # Denser sketches (smaller modulus) never hurt recall.
    assert by[(3, 12)]["recall"] >= by[(3, 24)]["recall"] - 1e-9
    # Three rounds at the paper's density recover nearly everything.
    assert by[(3, 12)]["recall"] > 0.9
    # No false edges: every confirmed edge is a true edge.
    assert all(r["confirmed"] <= n_truth + 5 for r in rows)
