"""Ablation — quality-aware tile counts (Og) vs raw counts (Oc).

Reptile gates tile support on per-base quality (Sec. 2.3: Og counts
only instances where every base clears Qc).  Setting Qc to 0 collapses
Og to Oc — the score-less fallback of Sec. 2.5.  This measures what
the quality signal is worth.
"""

import numpy as np
from conftest import print_rows

from repro.core.reptile import ReptileCorrector
from repro.eval import evaluate_correction

MAX_READS = 3000


def _run(ds, use_quality):
    mask = ds.evaluable_mask()
    reads = ds.sim.reads.subset(mask)
    true = ds.sim.true_codes[mask]
    sub = reads.subset(np.arange(min(MAX_READS, reads.n_reads)))
    kwargs = {}
    if not use_quality:
        kwargs = {"qc": 0, "qm": 1_000_000}
    corr = ReptileCorrector.fit(
        reads, genome_length_estimate=ds.sim.genome.length, k=9, **kwargs
    )
    m = evaluate_correction(
        sub.codes,
        corr.correct(sub).codes,
        true[: sub.n_reads],
        lengths=sub.lengths,
    )
    return {
        "counts": "quality-gated (Og)" if use_quality else "raw (Oc)",
        "sensitivity": round(m.sensitivity, 3),
        "specificity": round(m.specificity, 5),
        "gain": round(m.gain, 3),
        "FP": m.fp,
        "EBA": round(m.eba, 4),
    }


def test_ablation_quality_scores(benchmark, ch2_all):
    ds = ch2_all["D3"]

    def run_both():
        return [_run(ds, True), _run(ds, False)]

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print_rows("Ablation: quality-gated vs raw tile counts (D3)", rows)
    gated, raw = rows
    # Both settings work (the paper: Reptile 'can be run effectively
    # without scores'); the gated variant should not be worse on the
    # miscorrection side.
    assert gated["gain"] > 0.3 and raw["gain"] > 0.3
    assert gated["FP"] <= raw["FP"] + 5
