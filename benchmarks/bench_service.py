"""Extension — overhead of the durable correction job service.

The service's promise is crash-safety, not speed — but it only gets
adopted if the durability tax is small.  Two measurements:

- **store throughput**: submit / claim / heartbeat / finish cycles per
  second against the WAL-mode SQLite store, serially and with
  contending claimer threads (every cycle is a fsynced write
  transaction, so this is a floor, not a ceiling);
- **end-to-end overhead**: one correction run through the full worker
  path (claim, leases, checkpoints, atomic publish) versus the direct
  in-process `repro correct` equivalent — the headline number;
- **warm-pool speedup**: the same job submitted twice to one worker —
  the second run must hit the shared :class:`SpectrumPool` (skipping
  the spectrum fit entirely) and finish measurably faster, with
  byte-identical output.  This is asserted, not just reported: a
  regression that silently stops pooling fails the bench.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py [--smoke]
"""

from __future__ import annotations

import argparse
import threading
import time

from repro import telemetry
from repro.service import JobStore, ServeWorker, SpectrumPool
from repro.service.spec import JobSpec
from repro.tools.correct import main as correct_main
from repro.tools.simulate import main as simulate_main


def _print_rows(title: str, rows: list[dict]) -> None:
    print(f"\n== {title} ==")
    if not rows:
        return
    cols = list(rows[0])
    widths = {
        c: max(len(c), *(len(str(r[c])) for r in rows)) for c in cols
    }
    print("  ".join(c.ljust(widths[c]) for c in cols))
    for r in rows:
        print("  ".join(str(r[c]).ljust(widths[c]) for c in cols))


def run_store_throughput(
    tmp, n_jobs: int, thread_counts: tuple[int, ...]
) -> list[dict]:
    rows = []
    for n_threads in thread_counts:
        path = tmp / f"store-{n_threads}.sqlite3"
        spec = JobSpec(input="in.fastq", output="out.fastq")
        with JobStore(path) as store:
            for _ in range(n_jobs):
                store.submit(spec)
        done = []
        lock = threading.Lock()

        def drain(worker_id):
            # One connection per thread, as sqlite3 requires.
            with JobStore(path) as s:
                while True:
                    job = s.claim(worker_id, lease_seconds=60)
                    if job is None:
                        return
                    s.renew(job.id, worker_id, lease_seconds=60)
                    s.finish(job.id, worker_id, {"ok": True})
                    with lock:
                        done.append(job.id)

        threads = [
            threading.Thread(target=drain, args=(f"w{i}",))
            for i in range(n_threads)
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - t0
        assert len(done) == n_jobs and len(set(done)) == n_jobs
        rows.append({
            "claimers": n_threads,
            "jobs": n_jobs,
            "wall_s": round(wall, 3),
            "cycles_per_s": round(n_jobs / wall, 1),
        })
    return rows


def run_service_overhead(tmp, genome_length: int, coverage: float) -> list[dict]:
    data = tmp / "data"
    rc = simulate_main([
        str(data), "--genome-length", str(genome_length),
        "--coverage", str(coverage), "--seed", "7",
    ])
    assert rc == 0
    reads = data / "reads.fastq"

    direct_out = tmp / "direct.fastq"
    t0 = time.perf_counter()
    rc = correct_main([str(reads), str(direct_out), "--chunk-size", "256"])
    direct_wall = time.perf_counter() - t0
    assert rc == 0

    spool = tmp / "spool"
    service_out = tmp / "service.fastq"
    worker = ServeWorker(spool, lease_seconds=30.0, poll_seconds=0.01)
    worker.store.submit(JobSpec(
        input=str(reads), output=str(service_out), chunk_size=256,
    ))
    t0 = time.perf_counter()
    rc = worker.run(max_jobs=1)
    service_wall = time.perf_counter() - t0
    worker.store.close()
    assert rc == 0
    assert service_out.read_bytes() == direct_out.read_bytes(), (
        "service output must be byte-identical to the direct CLI run"
    )
    return [{
        "path": "direct correct",
        "wall_s": round(direct_wall, 3),
        "overhead": "-",
    }, {
        "path": "service (claim+lease+atomic publish)",
        "wall_s": round(service_wall, 3),
        "overhead": f"{(service_wall / direct_wall - 1) * 100:+.1f}%",
    }]


def run_pool_warmup(tmp, genome_length: int, coverage: float) -> list[dict]:
    """Cold vs warm run of an identical job through one worker."""
    data = tmp / "pool-data"
    rc = simulate_main([
        str(data), "--genome-length", str(genome_length),
        "--coverage", str(coverage), "--seed", "11",
    ])
    assert rc == 0
    reads = data / "reads.fastq"

    spool = tmp / "pool-spool"
    pool = SpectrumPool()
    worker = ServeWorker(
        spool, lease_seconds=30.0, poll_seconds=0.01, pool=pool
    )
    walls = []
    outs = []
    for n in ("cold", "warm"):
        out = tmp / f"pool-{n}.fastq"
        outs.append(out)
        worker.store.submit(JobSpec(
            input=str(reads), output=str(out), chunk_size=256,
        ))
        t0 = time.perf_counter()
        rc = worker.run(max_jobs=1)
        walls.append(time.perf_counter() - t0)
        assert rc == 0
    worker.store.close()

    stats = pool.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1, (
        f"second identical job must reuse the pooled spectrum, "
        f"got {stats}"
    )
    assert outs[0].read_bytes() == outs[1].read_bytes(), (
        "pool-hit output must be byte-identical to the cold run"
    )
    assert walls[1] < walls[0], (
        f"warm run ({walls[1]:.3f}s) must beat the cold run "
        f"({walls[0]:.3f}s) — the spectrum fit it skips dominates"
    )
    speedup = walls[0] / walls[1]
    return [{
        "run": "cold (fit + correct)",
        "wall_s": round(walls[0], 3),
        "speedup": "-",
    }, {
        "run": "warm (pool hit, correct only)",
        "wall_s": round(walls[1], 3),
        "speedup": f"{speedup:.2f}x",
    }]


def main(argv: list[str] | None = None) -> int:
    import tempfile
    from pathlib import Path

    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument(
        "--smoke", action="store_true",
        help="tiny dataset, equivalence-only — the CI bit-rot guard",
    )
    p.add_argument("--jobs", type=int, default=200)
    p.add_argument("--genome-length", type=int, default=20_000)
    p.add_argument("--coverage", type=float, default=10.0)
    p.add_argument(
        "--report", default=None, metavar="PATH",
        help="write a repro-run-report/1 JSON report (rows in `extra`)",
    )
    args = p.parse_args(argv)
    if args.smoke:
        args.jobs = 40
        args.genome_length = 2_000
        args.coverage = 8.0
    with tempfile.TemporaryDirectory() as tmp_name:
        tmp = Path(tmp_name)
        with telemetry.session("bench-service") as tel:
            with telemetry.span("store_throughput"):
                store_rows = run_store_throughput(
                    tmp, args.jobs, (1, 2, 4)
                )
            with telemetry.span("service_overhead"):
                overhead_rows = run_service_overhead(
                    tmp, args.genome_length, args.coverage
                )
            with telemetry.span("pool_warmup"):
                pool_rows = run_pool_warmup(
                    tmp, args.genome_length, args.coverage
                )
    _print_rows(
        f"Job-store cycle throughput ({args.jobs} jobs, WAL + fsync)",
        store_rows,
    )
    _print_rows("End-to-end service overhead", overhead_rows)
    _print_rows("Warm spectrum pool (identical job, same worker)", pool_rows)
    print(
        "equivalence: service output byte-identical to direct correction"
    )
    print(
        "pool: second identical job hit the warm spectrum and beat "
        "the cold run"
    )
    if args.report:
        path = tel.report(
            argv=list(argv) if argv is not None else None,
            extra={
                "store_throughput": store_rows,
                "service_overhead": overhead_rows,
                "pool_warmup": pool_rows,
            },
        ).write(args.report)
        print(f"wrote run report to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
