"""Ablation — Reptile's flexible tiling (decisions D3a/D3b) vs a fixed
left-to-right tiling.

The flexible decomposition is Chapter 2's central algorithmic idea:
when a tile is inconclusive, shifting the decomposition by one base
can isolate an error cluster that a rigid tiling cannot resolve.  The
ablation measures what the idea buys.
"""

import numpy as np
from conftest import print_rows

from repro.core.reptile import ReptileCorrector
from repro.eval import evaluate_correction

MAX_READS = 3000


def _run(ds, flexible):
    mask = ds.evaluable_mask()
    reads = ds.sim.reads.subset(mask)
    true = ds.sim.true_codes[mask]
    sub = reads.subset(np.arange(min(MAX_READS, reads.n_reads)))
    corr = ReptileCorrector.fit(
        reads,
        genome_length_estimate=ds.sim.genome.length,
        k=9,
        flexible_tiling=flexible,
    )
    result = corr.run(sub)
    m = evaluate_correction(
        sub.codes, result.reads.codes, true[: sub.n_reads], lengths=sub.lengths
    )
    return {
        "tiling": "flexible" if flexible else "fixed",
        "sensitivity": round(m.sensitivity, 3),
        "gain": round(m.gain, 3),
        "EBA": round(m.eba, 4),
        "tiles_examined": result.stats.tiles_examined,
    }


def test_ablation_flexible_tiling(benchmark, ch2_all):
    ds = ch2_all["D3"]  # the high-error dataset, where clusters matter

    def run_both():
        return [_run(ds, True), _run(ds, False)]

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print_rows("Ablation: flexible vs fixed tiling (D3)", rows)
    flex, fixed = rows
    # Flexible tiling must not lose, and usually wins on gain.
    assert flex["gain"] >= fixed["gain"] - 0.01
    assert flex["sensitivity"] >= fixed["sensitivity"] - 0.01
