"""Extension — wall-clock scaling of the parallel batch-correction engine.

The repo's first hardware-scaling benchmark: one Reptile corrector is
fitted serially (phase 1), then the per-read correction phase runs
through :func:`repro.parallel.correct_in_parallel` at increasing worker
counts over the same shared spectrum.  Two claims are checked:

- **equivalence** — every parallel run must be bitwise identical to the
  serial whole-set correction (always asserted, at any scale);
- **speedup** — with enough physical cores, 4 workers must beat the
  serial path by >= 2x.  The speedup assertion is skipped (with a
  printed notice) when the machine exposes fewer cores than the worker
  count being judged — a 1-core container cannot demonstrate scaling,
  only correctness.

Runs under pytest (``python -m pytest benchmarks/bench_parallel_correct.py``)
or standalone::

    PYTHONPATH=src python benchmarks/bench_parallel_correct.py [--smoke]

``--smoke`` is the CI bit-rot guard: a tiny dataset, 1 worker, full
equivalence checking, a few seconds end to end.
"""

from __future__ import annotations

import argparse
import os
import time

import numpy as np

from repro import telemetry
from repro.core.reptile import ReptileCorrector
from repro.parallel import correct_in_parallel
from repro.simulate.errors import illumina_like_model
from repro.simulate.genome import repeat_spec, simulate_genome
from repro.simulate.illumina import simulate_reads

#: Required speedup of 4 workers over serial (acceptance bar).
SPEEDUP_TARGET = 2.0


def _effective_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def build_dataset(
    genome_length: int, coverage: float, read_length: int = 36,
    error_rate: float = 0.008, seed: int = 7,
):
    rng = np.random.default_rng(seed)
    genome = simulate_genome(repeat_spec(genome_length, 0.0), rng)
    model = illumina_like_model(
        read_length, base_rate=error_rate, end_multiplier=4.0
    )
    return simulate_reads(
        genome, read_length, model, rng, coverage=coverage
    ).reads


def run_scaling(
    reads,
    workers_list: tuple[int, ...],
    chunk_size: int,
    spectrum_backing: str = "inherit",
) -> list[dict]:
    """Fit once, correct at each worker count, return timing rows.

    Raises ``AssertionError`` if any run's output differs from the
    serial whole-set correction.
    """
    with telemetry.span("fit"):
        corrector = ReptileCorrector.fit(reads)
    with telemetry.span("serial_baseline"):
        t0 = time.perf_counter()
        baseline = corrector.correct(reads)
        serial_seconds = time.perf_counter() - t0

    rows = [
        {
            "workers": "serial",
            "mode": "whole-set",
            "seconds": round(serial_seconds, 3),
            "speedup": 1.0,
            "identical": True,
        }
    ]
    for w in workers_list:
        report = correct_in_parallel(
            corrector,
            reads,
            workers=w,
            chunk_size=chunk_size,
            spectrum_backing=spectrum_backing,
        )
        identical = bool(
            np.array_equal(report.reads.codes, baseline.codes)
            and np.array_equal(report.reads.lengths, baseline.lengths)
        )
        assert identical, (
            f"parallel output at {w} workers diverged from serial correction"
        )
        rows.append(
            {
                "workers": w,
                "mode": report.mode,
                "seconds": round(report.wall_seconds, 3),
                "speedup": round(serial_seconds / report.wall_seconds, 2),
                "identical": identical,
            }
        )
    return rows


def _print_rows(title: str, rows: list[dict]) -> None:
    print(f"\n=== {title} ===")
    cols = list(rows[0])
    widths = {
        c: max(len(c), *(len(str(r[c])) for r in rows)) for c in cols
    }
    print("  ".join(c.ljust(widths[c]) for c in cols))
    for r in rows:
        print("  ".join(str(r[c]).ljust(widths[c]) for c in cols))


def _check_speedup(rows: list[dict], require: bool) -> None:
    at4 = [r for r in rows if r["workers"] == 4]
    if not at4:
        return
    cores = _effective_cores()
    if cores >= 4 or require:
        assert at4[0]["speedup"] >= SPEEDUP_TARGET, (
            f"4-worker speedup {at4[0]['speedup']}x below the "
            f"{SPEEDUP_TARGET}x target ({cores} cores available)"
        )
    else:
        print(
            f"[speedup assertion skipped: only {cores} CPU core(s) "
            f"visible — equivalence still verified]"
        )


def test_parallel_correct_scaling():
    reads = build_dataset(genome_length=12_000, coverage=30.0)
    rows = run_scaling(reads, workers_list=(1, 2, 4), chunk_size=1024)
    _print_rows(
        f"Parallel Reptile correction, {reads.n_reads} reads", rows
    )
    _check_speedup(rows, require=False)


def test_parallel_correct_shared_backing_smoke():
    reads = build_dataset(genome_length=1_500, coverage=8.0, seed=11)
    rows = run_scaling(
        reads, workers_list=(2,), chunk_size=128, spectrum_backing="shared"
    )
    assert all(r["identical"] for r in rows)


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument(
        "--smoke", action="store_true",
        help="tiny dataset, 1 worker — the CI bit-rot guard",
    )
    p.add_argument("--genome-length", type=int, default=12_000)
    p.add_argument("--coverage", type=float, default=30.0)
    p.add_argument("--chunk-size", type=int, default=1024)
    p.add_argument(
        "--workers", type=int, nargs="+", default=[1, 2, 4],
        help="worker counts to measure",
    )
    p.add_argument(
        "--spectrum-backing", choices=["inherit", "shared"],
        default="inherit",
    )
    p.add_argument(
        "--require-speedup", action="store_true",
        help="fail if 4 workers are not >= 2x serial even on a small "
             "machine (default: only asserted when >= 4 cores exist)",
    )
    p.add_argument(
        "--report", default=None, metavar="PATH",
        help="write a repro-run-report/1 JSON report (the same schema "
             "the CLI tools emit; scaling rows land in `extra`)",
    )
    args = p.parse_args(argv)
    if args.smoke:
        args.genome_length = 1_500
        args.coverage = 8.0
        args.chunk_size = 128
        args.workers = [1]
    with telemetry.session("bench-parallel-correct") as tel:
        with telemetry.span("build_dataset"):
            reads = build_dataset(args.genome_length, args.coverage)
        rows = run_scaling(
            reads,
            workers_list=tuple(args.workers),
            chunk_size=args.chunk_size,
            spectrum_backing=args.spectrum_backing,
        )
    _print_rows(
        f"Parallel Reptile correction, {reads.n_reads} reads "
        f"({_effective_cores()} cores)",
        rows,
    )
    _check_speedup(rows, require=args.require_speedup)
    print("equivalence: all runs bitwise identical to serial")
    if args.report:
        path = tel.report(
            argv=list(argv) if argv is not None else None,
            extra={"scaling_rows": rows},
        ).write(args.report)
        print(f"wrote run report to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
