"""Extension — wall-clock scaling of the parallel batch-correction engine.

The repo's first hardware-scaling benchmark: one Reptile corrector is
fitted serially (phase 1), then the per-read correction phase runs
through :func:`repro.parallel.correct_in_parallel` at increasing worker
counts over the same shared spectrum.  Two claims are checked:

- **equivalence** — every parallel run must be bitwise identical to the
  serial whole-set correction (always asserted, at any scale);
- **speedup** — with enough physical cores, 4 workers must beat the
  serial path by >= 2x.  The speedup assertion is skipped (with a
  printed notice) when the machine exposes fewer cores than the worker
  count being judged — a 1-core container cannot demonstrate scaling,
  only correctness.

Runs under pytest (``python -m pytest benchmarks/bench_parallel_correct.py``)
or standalone::

    PYTHONPATH=src python benchmarks/bench_parallel_correct.py [--smoke]

``--smoke`` is the CI bit-rot guard: a tiny dataset, 1 worker, full
equivalence checking, a few seconds end to end.

``--hotpath`` switches to the hot-path ablation: the scalar legacy
correction loop vs each fast path (batched tile kernels, tile memo
cache, Bloom prefilter) alone and combined, over one shared phase-1
fit.  Byte-equivalence with the scalar baseline is always asserted;
``--hotpath-report BENCH_hotpath.json`` emits the committed
``repro-bench-report/1`` perf-trajectory artifact (see
docs/performance.md).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from dataclasses import replace

import numpy as np

from repro import telemetry
from repro.core import HotpathConfig
from repro.core.reptile import ReptileCorrector
from repro.parallel import correct_in_parallel
from repro.simulate.errors import illumina_like_model
from repro.simulate.genome import repeat_spec, simulate_genome
from repro.simulate.illumina import simulate_reads
from repro.telemetry.report import (
    BENCH_SCHEMA_VERSION,
    environment_info,
    validate_bench_report_dict,
)

#: Required speedup of 4 workers over serial (acceptance bar).
SPEEDUP_TARGET = 2.0

#: Required all-on speedup over the scalar baseline on the full bench
#: corpus (the committed BENCH_hotpath.json artifact).  CI runs the
#: same ablation on a small corpus with a more conservative floor.
HOTPATH_SPEEDUP_FLOOR = 3.0

#: The ablation grid: each fast path alone, then all together.  The
#: scalar baseline is the legacy per-tile path, instruction for
#: instruction (see docs/performance.md).
HOTPATH_CONFIGS: tuple[tuple[str, HotpathConfig], ...] = (
    ("scalar", HotpathConfig.all_off()),
    ("batch", replace(HotpathConfig.all_off(), batch=True)),
    ("memo", replace(HotpathConfig.all_off(), memo=True)),
    ("prefilter", replace(HotpathConfig.all_off(), prefilter=True)),
    ("all_on", HotpathConfig.all_on()),
)


def _effective_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def build_dataset(
    genome_length: int, coverage: float, read_length: int = 36,
    error_rate: float = 0.008, seed: int = 7,
):
    rng = np.random.default_rng(seed)
    genome = simulate_genome(repeat_spec(genome_length, 0.0), rng)
    model = illumina_like_model(
        read_length, base_rate=error_rate, end_multiplier=4.0
    )
    return simulate_reads(
        genome, read_length, model, rng, coverage=coverage
    ).reads


def run_scaling(
    reads,
    workers_list: tuple[int, ...],
    chunk_size: int,
    spectrum_backing: str = "inherit",
) -> list[dict]:
    """Fit once, correct at each worker count, return timing rows.

    Raises ``AssertionError`` if any run's output differs from the
    serial whole-set correction.
    """
    with telemetry.span("fit"):
        corrector = ReptileCorrector.fit(reads)
    with telemetry.span("serial_baseline"):
        t0 = time.perf_counter()
        baseline = corrector.correct(reads)
        serial_seconds = time.perf_counter() - t0

    rows = [
        {
            "workers": "serial",
            "mode": "whole-set",
            "seconds": round(serial_seconds, 3),
            "speedup": 1.0,
            "identical": True,
        }
    ]
    for w in workers_list:
        report = correct_in_parallel(
            corrector,
            reads,
            workers=w,
            chunk_size=chunk_size,
            spectrum_backing=spectrum_backing,
        )
        identical = bool(
            np.array_equal(report.reads.codes, baseline.codes)
            and np.array_equal(report.reads.lengths, baseline.lengths)
        )
        assert identical, (
            f"parallel output at {w} workers diverged from serial correction"
        )
        rows.append(
            {
                "workers": w,
                "mode": report.mode,
                "seconds": round(report.wall_seconds, 3),
                "speedup": round(serial_seconds / report.wall_seconds, 2),
                "identical": identical,
            }
        )
    return rows


def run_hotpath_ablation(reads, repeats: int = 1) -> list[dict]:
    """Time each hot-path configuration over the same phase-1 tables.

    Phase 1 (spectrum, tiles, thresholds) is fitted **once** with every
    fast path off; each ablation corrector is then rebuilt around the
    same shared structures, so the rows measure only the correction
    pass.  Every config's output is asserted byte-identical to the
    scalar baseline before any timing claim is recorded.
    """
    with telemetry.span("fit"):
        base = ReptileCorrector.fit(reads, hotpath=HotpathConfig.all_off())

    def _time(corrector):
        best, corrected = None, None
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            corrected = corrector.correct(reads)
            dt = time.perf_counter() - t0
            best = dt if best is None else min(best, dt)
        return best, corrected

    rows: list[dict] = []
    baseline_codes = baseline_lengths = baseline_seconds = None
    for name, hp in HOTPATH_CONFIGS:
        corrector = (
            base
            if name == "scalar"
            else ReptileCorrector(
                params=base.params,
                spectrum=base.spectrum,
                tiles=base.tiles,
                hotpath=hp,
            )
        )
        with telemetry.span(f"correct[{name}]"):
            seconds, corrected = _time(corrector)
        if name == "scalar":
            baseline_codes = corrected.codes
            baseline_lengths = corrected.lengths
            baseline_seconds = seconds
        identical = bool(
            np.array_equal(corrected.codes, baseline_codes)
            and np.array_equal(corrected.lengths, baseline_lengths)
        )
        assert identical, (
            f"hot-path config {name!r} diverged from the scalar baseline"
        )
        rows.append(
            {
                "name": name,
                "batch": hp.batch,
                "memo": hp.memo,
                "prefilter": hp.prefilter,
                "wall_seconds": round(seconds, 4),
                "reads_per_second": round(reads.n_reads / max(seconds, 1e-9), 1),
                "speedup_vs_baseline": round(baseline_seconds / max(seconds, 1e-9), 2),
                "equivalent_to_baseline": identical,
            }
        )
    return rows


def hotpath_report(
    rows: list[dict], corpus: dict, speedup_floor: float
) -> dict:
    """Assemble (and self-validate) a ``repro-bench-report/1`` document."""
    report = {
        "schema": BENCH_SCHEMA_VERSION,
        "benchmark": "bench_parallel_correct/hotpath_ablation",
        "corpus": corpus,
        "environment": environment_info(),
        "baseline": "scalar",
        "speedup_floor": speedup_floor,
        "configs": rows,
    }
    problems = validate_bench_report_dict(report)
    assert not problems, f"bench report failed self-validation: {problems}"
    return report


def _check_hotpath_speedup(rows: list[dict], floor: float) -> None:
    all_on = next(r for r in rows if r["name"] == "all_on")
    assert all_on["speedup_vs_baseline"] >= floor, (
        f"all-on hot path is {all_on['speedup_vs_baseline']}x the scalar "
        f"baseline, below the {floor}x floor"
    )


def _print_rows(title: str, rows: list[dict]) -> None:
    print(f"\n=== {title} ===")
    cols = list(rows[0])
    widths = {
        c: max(len(c), *(len(str(r[c])) for r in rows)) for c in cols
    }
    print("  ".join(c.ljust(widths[c]) for c in cols))
    for r in rows:
        print("  ".join(str(r[c]).ljust(widths[c]) for c in cols))


def _check_speedup(rows: list[dict], require: bool) -> None:
    at4 = [r for r in rows if r["workers"] == 4]
    if not at4:
        return
    cores = _effective_cores()
    if cores >= 4 or require:
        assert at4[0]["speedup"] >= SPEEDUP_TARGET, (
            f"4-worker speedup {at4[0]['speedup']}x below the "
            f"{SPEEDUP_TARGET}x target ({cores} cores available)"
        )
    else:
        print(
            f"[speedup assertion skipped: only {cores} CPU core(s) "
            f"visible — equivalence still verified]"
        )


def test_parallel_correct_scaling():
    reads = build_dataset(genome_length=12_000, coverage=30.0)
    rows = run_scaling(reads, workers_list=(1, 2, 4), chunk_size=1024)
    _print_rows(
        f"Parallel Reptile correction, {reads.n_reads} reads", rows
    )
    _check_speedup(rows, require=False)


def test_parallel_correct_shared_backing_smoke():
    reads = build_dataset(genome_length=1_500, coverage=8.0, seed=11)
    rows = run_scaling(
        reads, workers_list=(2,), chunk_size=128, spectrum_backing="shared"
    )
    assert all(r["identical"] for r in rows)


def test_hotpath_ablation_equivalence_smoke():
    """Every ablation config is byte-identical to the scalar baseline
    and the emitted artifact satisfies repro-bench-report/1.  (Speedup
    is not asserted at smoke scale — the committed artifact and the CI
    bench job own that claim.)"""
    reads = build_dataset(genome_length=1_500, coverage=8.0, seed=11)
    rows = run_hotpath_ablation(reads)
    assert [r["name"] for r in rows] == [n for n, _ in HOTPATH_CONFIGS]
    assert all(r["equivalent_to_baseline"] for r in rows)
    report = hotpath_report(
        rows,
        {"genome_length": 1_500, "coverage": 8.0, "reads": reads.n_reads},
        HOTPATH_SPEEDUP_FLOOR,
    )
    assert validate_bench_report_dict(report) == []


def _main_hotpath(args: argparse.Namespace) -> int:
    """The ``--hotpath`` entry point: ablate, assert, emit artifact."""
    with telemetry.session("bench-hotpath-ablation"):
        with telemetry.span("build_dataset"):
            reads = build_dataset(args.genome_length, args.coverage)
        rows = run_hotpath_ablation(reads, repeats=args.hotpath_repeats)
    _print_rows(
        f"Hot-path ablation, {reads.n_reads} reads "
        f"({_effective_cores()} cores)",
        rows,
    )
    print("equivalence: all configs byte-identical to the scalar baseline")
    report = hotpath_report(
        rows,
        {
            "genome_length": args.genome_length,
            "coverage": args.coverage,
            "read_length": 36,
            "error_rate": 0.008,
            "seed": 7,
            "reads": reads.n_reads,
        },
        args.hotpath_floor,
    )
    if args.hotpath_report:
        with open(args.hotpath_report, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote bench report to {args.hotpath_report}")
    all_on = next(r for r in rows if r["name"] == "all_on")
    if args.require_hotpath_speedup:
        _check_hotpath_speedup(rows, args.hotpath_floor)
        print(
            f"speedup: all-on {all_on['speedup_vs_baseline']}x >= "
            f"{args.hotpath_floor}x floor"
        )
    else:
        print(
            f"speedup: all-on {all_on['speedup_vs_baseline']}x "
            f"(floor {args.hotpath_floor}x recorded, not asserted)"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument(
        "--smoke", action="store_true",
        help="tiny dataset, 1 worker — the CI bit-rot guard",
    )
    p.add_argument("--genome-length", type=int, default=12_000)
    p.add_argument("--coverage", type=float, default=30.0)
    p.add_argument("--chunk-size", type=int, default=1024)
    p.add_argument(
        "--workers", type=int, nargs="+", default=[1, 2, 4],
        help="worker counts to measure",
    )
    p.add_argument(
        "--spectrum-backing", choices=["inherit", "shared"],
        default="inherit",
    )
    p.add_argument(
        "--require-speedup", action="store_true",
        help="fail if 4 workers are not >= 2x serial even on a small "
             "machine (default: only asserted when >= 4 cores exist)",
    )
    p.add_argument(
        "--report", default=None, metavar="PATH",
        help="write a repro-run-report/1 JSON report (the same schema "
             "the CLI tools emit; scaling rows land in `extra`)",
    )
    p.add_argument(
        "--hotpath", action="store_true",
        help="run the hot-path ablation (scalar/batch/memo/prefilter/"
             "all_on) instead of the worker-scaling sweep",
    )
    p.add_argument(
        "--hotpath-report", default=None, metavar="PATH",
        help="write the ablation as a repro-bench-report/1 artifact "
             "(e.g. BENCH_hotpath.json)",
    )
    p.add_argument(
        "--hotpath-floor", type=float, default=HOTPATH_SPEEDUP_FLOOR,
        metavar="X",
        help=f"required all-on speedup over scalar "
             f"(default {HOTPATH_SPEEDUP_FLOOR}; CI uses a conservative "
             f"floor on its small corpus)",
    )
    p.add_argument(
        "--require-hotpath-speedup", action="store_true",
        help="fail the run if the all-on config misses --hotpath-floor "
             "(default: floor is printed, only the artifact records it)",
    )
    p.add_argument(
        "--hotpath-repeats", type=int, default=1, metavar="N",
        help="timing repeats per config (best-of-N; default 1)",
    )
    args = p.parse_args(argv)
    if args.smoke:
        args.genome_length = 1_500
        args.coverage = 8.0
        args.chunk_size = 128
        args.workers = [1]
    if args.hotpath:
        return _main_hotpath(args)
    with telemetry.session("bench-parallel-correct") as tel:
        with telemetry.span("build_dataset"):
            reads = build_dataset(args.genome_length, args.coverage)
        rows = run_scaling(
            reads,
            workers_list=tuple(args.workers),
            chunk_size=args.chunk_size,
            spectrum_backing=args.spectrum_backing,
        )
    _print_rows(
        f"Parallel Reptile correction, {reads.n_reads} reads "
        f"({_effective_cores()} cores)",
        rows,
    )
    _check_speedup(rows, require=args.require_speedup)
    print("equivalence: all runs bitwise identical to serial")
    if args.report:
        path = tel.report(
            argv=list(argv) if argv is not None else None,
            extra={"scaling_rows": rows},
        ).write(args.report)
        print(f"wrote run report to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
