"""Ablation — neighbor retrieval strategies (Sec. 2.3's trade-off).

Three exact ways to find all spectrum k-mers within Hamming d:
complete-neighborhood probing (no memory), the masked-replica index
(the paper's replicated sorted copies), and a fully precomputed CSR
adjacency.  All must agree; their build/query costs differ — exactly
the trade-off the thesis discusses ('storing 13 copies of R^k took
~560 MB but made each neighbor lookup constant time').
"""

import time

import numpy as np
from conftest import print_rows

from repro.kmer import (
    MaskedKmerIndex,
    PrecomputedNeighborIndex,
    ProbingNeighborIndex,
    spectrum_from_reads,
)

K = 11
N_QUERIES = 400


def _bench_backend(name, build, spectrum):
    t0 = time.perf_counter()
    index = build()
    build_s = time.perf_counter() - t0
    rng = np.random.default_rng(0)
    queries = spectrum.kmers[
        rng.integers(0, spectrum.n_kmers, size=N_QUERIES)
    ]
    t0 = time.perf_counter()
    answers = [tuple(index.neighbors(int(q)).tolist()) for q in queries]
    query_s = time.perf_counter() - t0
    return {
        "backend": name,
        "build_s": round(build_s, 3),
        "query_ms_per_kmer": round(1000 * query_s / N_QUERIES, 4),
    }, answers


def test_ablation_neighbor_backends(benchmark, ch3_core):
    reads = ch3_core["D1"].sim.reads.subset(np.arange(20_000))
    spectrum = spectrum_from_reads(reads, K)

    def run_all():
        rows = []
        answer_sets = []
        for name, build in [
            ("probing", lambda: ProbingNeighborIndex(spectrum, 1)),
            ("masked-replica", lambda: MaskedKmerIndex(spectrum.kmers, K, 1)),
            ("precomputed-CSR", lambda: PrecomputedNeighborIndex(spectrum, 1)),
        ]:
            row, answers = _bench_backend(name, build, spectrum)
            rows.append(row)
            answer_sets.append(answers)
        return rows, answer_sets

    rows, answer_sets = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_rows(f"Ablation: neighbor retrieval (|R^k|={spectrum.n_kmers})", rows)
    # All three backends return identical neighbor sets.
    assert answer_sets[0] == answer_sets[1] == answer_sets[2]
    by = {r["backend"]: r for r in rows}
    # Precomputation pays at query time.
    assert (
        by["precomputed-CSR"]["query_ms_per_kmer"]
        <= by["probing"]["query_ms_per_kmer"]
    )
