"""Table 3.1 — REDEEM dataset characteristics.

Paper shape: three synthetic genomes at 20/50/80% repeat content, 80x
coverage, 36 bp reads, 2.2M reads each at 1 Mbp (here scaled down with
proportions intact).
"""

from conftest import print_rows

from repro.experiments.chapter3 import run_table_3_1


def test_table_3_1(benchmark, ch3_core):
    rows = benchmark.pedantic(
        run_table_3_1, args=(ch3_core,), rounds=1, iterations=1
    )
    print_rows("Table 3.1 (reproduction): REDEEM datasets", rows)
    by = {r["name"]: r for r in rows}
    assert [by[d]["repeat_pct"] for d in ("D1", "D2", "D3")] == [
        20.0,
        50.0,
        80.0,
    ]
    for r in rows:
        assert r["coverage"] == 80.0
        assert r["len_avg"] == 36.0
