"""Fig 2.3 — Gain & Sensitivity across Reptile parameter choices (D3).

Paper shape: relaxing (Cm, Qc) from strict (14, 60) to permissive
(5, 45) raises sensitivity monotonically (0.38 -> 0.86) while Gain
rises then saturates (0.30 -> ~0.72), the final (k+1, d=2) point
trading a little Gain for the highest sensitivity.
"""

from conftest import print_rows

from repro.experiments.chapter2 import run_fig_2_3

MAX_READS = 2500


def test_fig_2_3(benchmark, ch2_all):
    ds = ch2_all["D3"]
    rows = benchmark.pedantic(
        run_fig_2_3,
        args=(ds,),
        kwargs={"max_reads": MAX_READS},
        rounds=1,
        iterations=1,
    )
    print_rows("Fig 2.3 (reproduction): Gain/Sensitivity vs parameters", rows)
    sens = [r["sensitivity"] for r in rows]
    gains = [r["gain"] for r in rows]
    # Permissive settings recover more errors than the strictest point
    # (the paper's monotone sensitivity climb, 0.38 -> 0.86).
    assert max(sens) > sens[0]
    assert max(sens[7:]) >= max(sens[:4])
    # Gain rises from the strict corner and never goes negative
    # (paper: 0.30 -> ~0.72, saturating).
    assert min(gains) >= 0.0
    assert max(gains) > gains[0]
