"""Extension — overhead of the fault-tolerant execution layer.

The reliable path (retries, timeouts, skip mode) must be close to free
when nothing fails, or nobody would leave it on — Hadoop's recovery
machinery costs little on healthy clusters for the same reason: the
bookkeeping is per task attempt, not per record.  Measured here on a
fault-free wordcount-scale job, serial and with a pool, plus the price
of an actual recovery (a transient fault barrage) for contrast.
"""

import time

import numpy as np
from conftest import print_rows

from repro.mapreduce import (
    Counters,
    FaultPlan,
    FaultSpec,
    MapReduceTask,
    RetryPolicy,
    run_task,
    run_task_reliable,
)


def wc_mapper(key, value):
    for word in value.split():
        yield word, 1


def sum_reducer(key, values):
    yield key, sum(values)


TASK = MapReduceTask("wordcount", wc_mapper, sum_reducer, combiner=sum_reducer)


def _inputs(n_docs: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    vocab = [f"w{i}" for i in range(200)]
    return [
        (i, " ".join(rng.choice(vocab, 40)))
        for i in range(n_docs)
    ]


def _time(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def test_zero_fault_overhead(benchmark):
    data = _inputs(4_000)
    policy = RetryPolicy(max_retries=3, task_timeout=60.0)

    def run_all():
        rows = []
        for workers in (1, 2):
            base = dict(run_task(TASK, data, n_workers=workers, chunk_size=500))
            plain = min(
                _time(lambda: run_task(TASK, data, n_workers=workers,
                                       chunk_size=500))
                for _ in range(3)
            )
            out = {}
            reliable = min(
                _time(lambda: out.update(dict(run_task_reliable(
                    TASK, data, n_workers=workers, chunk_size=500,
                    policy=policy))))
                for _ in range(3)
            )
            assert out == base  # same answer on the reliable path
            rows.append(
                {
                    "workers": workers,
                    "plain_s": round(plain, 3),
                    "reliable_s": round(reliable, 3),
                    "overhead": f"{(reliable / plain - 1) * 100:+.1f}%",
                }
            )
        # Price of actual recovery, for contrast (not part of the bound).
        plan = FaultPlan(seed=2, specs=(
            FaultSpec(kind="raise", phase="map", rate=0.05, max_attempt=1),
        ))
        counters = Counters()
        faulty = _time(lambda: run_task_reliable(
            plan.wrap(TASK), data, chunk_size=500,
            counters=counters,
            policy=RetryPolicy(max_retries=2, backoff_base=0.001)))
        rows.append(
            {
                "workers": "1 (5% faults)",
                "plain_s": "-",
                "reliable_s": round(faulty, 3),
                "overhead": f"{counters['retries']} retries",
            }
        )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_rows("Extension: fault-tolerant engine overhead (4000 docs)", rows)
    # ISSUE bound: ~10% on a fault-free job; asserted loosely (CI noise,
    # pool startup) — the serial path is the honest measure of the
    # per-chunk bookkeeping.
    serial = rows[0]
    assert float(serial["reliable_s"]) < float(serial["plain_s"]) * 1.35
