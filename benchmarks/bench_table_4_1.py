"""Table 4.1 — metagenomic dataset characteristics.

Paper shape: three nested samples of one 16S pool (312k / 1.74M /
5.66M reads, ratio ~1 : 5.6 : 18), read lengths 167-894 bp averaging
~371-375 bp.
"""

from conftest import print_rows

from repro.experiments.chapter4 import run_table_4_1


def test_table_4_1(benchmark, ch4_samples_fixture):
    rows = benchmark.pedantic(
        run_table_4_1, args=(ch4_samples_fixture,), rounds=1, iterations=1
    )
    print_rows("Table 4.1 (reproduction): metagenome samples", rows)
    by = {r["name"]: r for r in rows}
    # Size ratio follows the paper's 1 : 5.6 : 18.
    assert abs(by["medium"]["n_reads"] / by["small"]["n_reads"] - 5.6) < 0.3
    assert abs(by["large"]["n_reads"] / by["small"]["n_reads"] - 18.0) < 0.5
    for r in rows:
        assert 167 <= r["len_min"] <= r["len_avg"] <= r["len_max"] <= 894
        assert 330 <= r["len_avg"] <= 420  # paper: 371-375 bp
