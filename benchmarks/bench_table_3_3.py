"""Table 3.3 — minimum FP+FN: thresholds on Y vs on REDEEM's T.

Paper shape: with the true error distribution (tIED) REDEEM commits
>95% fewer wrong predictions on the repetitive genomes; even wrong
distributions (wIED/wUED) usually beat raw Y thresholding, and the
advantage widens with repeat content (D1 -> D3).
"""

from conftest import print_rows

from repro.experiments.chapter3 import run_table_3_3


def test_table_3_3(benchmark, ch3_core):
    rows = benchmark.pedantic(
        run_table_3_3,
        args=(ch3_core,),
        kwargs={"k": 10},
        rounds=1,
        iterations=1,
    )
    print_rows("Table 3.3 (reproduction): min FP+FN, Y vs T", rows)
    by = {r["data"]: r for r in rows}
    for name in ("D1", "D2", "D3"):
        r = by[name]
        # The true distribution wins big (paper: >95% fewer WPs).
        assert r["tIED"] < 0.5 * r["Y"], r
        # The true uniform distribution also beats Y.
        assert r["tUED"] < r["Y"], r
    # The advantage widens with repetitiveness.
    gap = lambda r: r["Y"] / max(r["tIED"], 1)
    assert gap(by["D3"]) > gap(by["D1"])
