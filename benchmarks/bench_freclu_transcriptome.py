"""Extension — FreClu-style whole-read correction on small-RNA data.

Sec. 1.2 describes FreClu: Illumina small-RNA reads replicate as whole
molecules, so frequency trees over distinct sequences correct errors
and recover per-molecule counts ('up to 5% more reads can be mapped').
REDEEM generalizes the idea to k-mers; this bench shows the baseline
working in its native domain.
"""

import numpy as np
from conftest import print_rows

from repro.baselines import FrecluCorrector
from repro.eval import evaluate_correction
from repro.seq import pack_kmer
from repro.simulate import simulate_transcriptome


def test_freclu_transcriptome(benchmark):
    sample = simulate_transcriptome(
        n_transcripts=40,
        n_reads=20_000,
        rng=np.random.default_rng(0),
        length=22,
        error_rate=0.012,
        abundance_sigma=1.2,
    )

    def run():
        result = FrecluCorrector().correct(sample.reads)
        m = evaluate_correction(
            sample.reads.codes, result.reads.codes, sample.true_codes()
        )
        corrected = result.corrected_counts()
        true_counts = sample.true_counts()
        raw_err = 0
        corr_err = 0
        raw = {}
        for i in range(sample.n_reads):
            key = pack_kmer(sample.reads.read_codes(i))
            raw[int(key)] = raw.get(int(key), 0) + 1
        for t, tc in enumerate(true_counts.tolist()):
            key = int(pack_kmer(sample.transcripts[t]))
            raw_err += abs(raw.get(key, 0) - tc)
            corr_err += abs(corrected.get(key, 0) - tc)
        return [
            {
                "quantity": "base-level gain",
                "value": round(m.gain, 3),
            },
            {
                "quantity": "count error (raw reads)",
                "value": raw_err,
            },
            {
                "quantity": "count error (FreClu-corrected)",
                "value": corr_err,
            },
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_rows("Extension: FreClu on small-RNA reads", rows)
    by = {r["quantity"]: r["value"] for r in rows}
    # Errors are removed and per-molecule counts get much closer to
    # the truth (the FreClu objective).
    assert by["base-level gain"] > 0.6
    assert by["count error (FreClu-corrected)"] < 0.5 * by["count error (raw reads)"]
