"""Fig 3.3 — histogram of the estimated read attempts T_l.

Paper shape (E. coli dataset): a spike of erroneous k-mers near zero,
a dominant single-copy peak near the coverage constant (~57 there),
and a small two-copy bump at twice that; the mixture threshold falls
in the valley between the spike and the single-copy peak.
"""

from conftest import print_rows

from repro.experiments.chapter3 import run_fig_3_3


def test_fig_3_3(benchmark, ch3_lowrep):
    out = benchmark.pedantic(
        run_fig_3_3,
        args=(ch3_lowrep["D6"],),
        kwargs={"k": 10},
        rounds=1,
        iterations=1,
    )
    T = out["T"]
    hist, edges = out["hist"], out["bin_edges"]
    rows = [
        {
            "bin": f"{edges[i]:.1f}-{edges[i + 1]:.1f}",
            "count": int(hist[i]),
        }
        for i in range(0, len(hist), max(1, len(hist) // 20))
    ]
    print_rows("Fig 3.3 (reproduction): histogram of T_l (D6)", rows)
    print(
        f"threshold={out['threshold']:.2f} "
        f"coverage_peak={out['coverage_peak']:.2f} G={out['n_groups']}"
    )

    # Spike near zero (erroneous kmers)...
    assert hist[0] > 0.2 * hist.sum()
    # ...and a genuine single-copy peak well separated from it.
    peak = out["coverage_peak"]
    assert peak > 5 * out["threshold"] / 5  # threshold below the peak
    assert out["threshold"] < peak
    near_peak = T[(T > 0.7 * peak) & (T < 1.3 * peak)]
    assert near_peak.size > 0.1 * T.size
    # The threshold separates the modes: few kmers sit right at it.
    at_thr = T[(T > 0.8 * out["threshold"]) & (T < 1.2 * out["threshold"])]
    assert at_thr.size < near_peak.size
