"""Table 2.2 — RMAP mapping rates per dataset.

Paper shape: low-error 36 bp datasets map ~96-97% uniquely; the
noisier D5/D6 fall to ~63-69% unique with a long unmapped tail; a few
percent map ambiguously (repeats).
"""

from conftest import print_rows

from repro.experiments.chapter2 import run_table_2_2


def test_table_2_2(benchmark, ch2_all):
    rows = benchmark.pedantic(
        run_table_2_2, args=(ch2_all,), rounds=1, iterations=1
    )
    print_rows("Table 2.2 (reproduction): RMAP mapping rates", rows)
    by = {r["data"]: r for r in rows}
    # Clean datasets map nearly completely and uniquely.
    assert by["D1"]["unique_pct"] > 90
    assert by["D2"]["unique_pct"] > 90
    # The noisiest dataset maps worst (paper: D5 62.5% vs D1 96.5%).
    assert by["D5"]["unique_pct"] < by["D1"]["unique_pct"]
    assert by["D5"]["unmapped_pct"] >= by["D1"]["unmapped_pct"]
