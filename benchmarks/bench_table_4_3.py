"""Table 4.3 — CLOSET per-stage run time across input sizes.

Paper shape (32-node Hadoop): stage times grow far slower than the 18x
input growth (sketching 771 s -> 4220 s, ~5.5x; validation 549 ->
1639 s, ~3x; filtering nearly flat) — the pipeline scales sublinearly
per stage.  Here the 'cluster' is the local MapReduce engine.
"""

from conftest import print_rows

from repro.experiments.chapter4 import run_table_4_3

THRESHOLDS = (0.95, 0.92, 0.90)


def test_table_4_3(benchmark, ch4_samples_fixture):
    rows = benchmark.pedantic(
        run_table_4_3,
        args=(ch4_samples_fixture,),
        kwargs={"thresholds": THRESHOLDS, "backend": "mapreduce"},
        rounds=1,
        iterations=1,
    )
    print_rows("Table 4.3 (reproduction): per-stage run time (s)", rows)
    by = {r["data"]: r for r in rows}
    growth_inputs = by["large"]["n_reads"] / by["small"]["n_reads"]  # ~18x
    # Hashing and sketching scale gently with input size (the paper's
    # sublinear stages).  Validation is edge-bound: at bench scale the
    # fixed small taxonomy densifies quadratically when resampled, so
    # the end-to-end total is only required to beat the all-pairs
    # baseline's quadratic growth.
    growth_hash = by["large"]["hashing"] / max(by["small"]["hashing"], 1e-9)
    growth_total = by["large"]["total"] / max(by["small"]["total"], 1e-9)
    assert growth_hash < 3 * growth_inputs
    assert growth_total < growth_inputs**2
    for r in rows:
        for stage in ("hashing", "sketching", "validation", "filtering", "clustering"):
            assert stage in r
            assert r[stage] >= 0
