"""Table 4.4 — the ARI cluster-assessment methodology, made concrete.

The thesis defines the contingency-table/ARI machinery but cannot
apply it (no truth labels for mouse-gut reads).  Our simulator knows
every read's taxonomy, so the methodology closes: sweep similarity
thresholds, compute ARI against the canonical clusters of each rank,
and confirm that *different thresholds maximize different ranks* —
the premise of CLOSET's multi-threshold design.
"""

from conftest import print_rows

from repro.experiments.chapter4 import best_threshold_per_rank, run_table_4_4_ari

THRESHOLDS = (0.9, 0.8, 0.7, 0.6, 0.5, 0.4)


def test_table_4_4_ari(benchmark, ch4_samples_fixture):
    sample = ch4_samples_fixture["small"]
    rows = benchmark.pedantic(
        run_table_4_4_ari,
        args=(sample,),
        kwargs={"thresholds": THRESHOLDS},
        rounds=1,
        iterations=1,
    )
    print_rows("Table 4.4 (reproduction): ARI per rank vs threshold", rows)
    best = best_threshold_per_rank(rows)
    print(f"ARI-maximizing threshold per rank: {best}")

    # Purity stays high at stringent thresholds for every rank.
    stringent = rows[0]
    assert stringent["purity_species"] > 0.8
    assert stringent["purity_genus"] > 0.8
    # Coarser ranks are best separated at lower (or equal) thresholds:
    # species-level linkage needs more similarity than genus-level.
    assert best["genus"] <= best["species"] + 1e-9
    # The sweep is informative: ARI varies across thresholds.
    species_aris = [r["ARI_species"] for r in rows]
    assert max(species_aris) > min(species_aris)
