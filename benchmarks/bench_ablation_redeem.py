"""Ablation — REDEEM's dmax and EM iteration budget (Sec. 3.5).

The thesis reports dmax=1 with 'results for dmax=2 changed little',
and the EM guarantees monotone likelihood.  We quantify both: the
detection quality under dmax ∈ {1, 2}, and how quickly the likelihood
and minimum-FP+FN converge over iterations.
"""

import numpy as np
from conftest import print_rows

from repro.core.redeem import RedeemCorrector, kmer_error_model_from_read_model
from repro.eval import detection_curve, genomic_truth
from repro.kmer import spectrum_from_sequence

K = 10


def test_ablation_dmax(benchmark, ch3_core):
    ds = ch3_core["D2"]
    km = kmer_error_model_from_read_model(ds.read_model, K)
    gspec = spectrum_from_sequence(ds.sim.genome.codes, K, both_strands=True)
    thrs = np.linspace(0.0, 80.0, 161)

    def run_both():
        rows = []
        for dmax in (1, 2):
            corr = RedeemCorrector.fit(
                ds.sim.reads, k=K, error_model=km, dmax=dmax
            )
            truth = genomic_truth(corr.spectrum.kmers, gspec)
            wp = detection_curve(corr.T, truth, thrs).min_wrong_predictions()
            rows.append(
                {
                    "dmax": dmax,
                    "min_FP+FN": wp,
                    "edges": int(corr.model.P.nnz),
                    "em_iters": corr.model.n_iter,
                }
            )
        return rows

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print_rows("Ablation: REDEEM dmax (D2, 50% repeats)", rows)
    d1, d2 = rows
    # dmax=2 explodes the neighborhood but changes detection little
    # (the thesis: 'results for dmax=2 changed little').
    assert d2["edges"] > 3 * d1["edges"]
    assert abs(d2["min_FP+FN"] - d1["min_FP+FN"]) < 0.5 * max(d1["min_FP+FN"], 20)


def test_ablation_em_iterations(benchmark, ch3_core):
    ds = ch3_core["D2"]
    km = kmer_error_model_from_read_model(ds.read_model, K)
    gspec = spectrum_from_sequence(ds.sim.genome.codes, K, both_strands=True)
    thrs = np.linspace(0.0, 80.0, 161)

    def run_sweep():
        rows = []
        for iters in (1, 3, 10, 40):
            corr = RedeemCorrector.fit(
                ds.sim.reads, k=K, error_model=km, max_iter=iters
            )
            truth = genomic_truth(corr.spectrum.kmers, gspec)
            wp = detection_curve(corr.T, truth, thrs).min_wrong_predictions()
            rows.append(
                {
                    "max_iter": iters,
                    "min_FP+FN": wp,
                    "loglik": round(corr.model.log_likelihood[-1], 1),
                }
            )
        return rows

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_rows("Ablation: EM iteration budget (D2)", rows)
    # Likelihood is monotone in the budget; detection stabilizes.
    logliks = [r["loglik"] for r in rows]
    assert all(b >= a - 1e-6 for a, b in zip(logliks, logliks[1:]))
    assert rows[-1]["min_FP+FN"] <= rows[0]["min_FP+FN"]
