"""Extension — MapReduce worker scaling and engine overheads.

Sec. 1.3.1 motivates Hadoop by 'flat scalability' at the price of
'no guarantee of efficiency' (Table 1.2).  The local engine exhibits
both sides: adding workers speeds up compute-heavy map phases, while
tiny jobs are dominated by process-pool overhead — measured here so
the trade-off is a number, not a slogan.
"""

import numpy as np
from conftest import print_rows

from repro.mapreduce import MapReduceTask, run_task


def heavy_mapper(key, value):
    """CPU-bound mapper: count 4-mers of a sequence (pure Python).

    4-mers keep the key space tiny (256), so the combiner collapses
    each chunk's output and the shuffle stays cheap — the
    communication-light regime Table 1.2 says MapReduce wants.  (An
    8-mer variant of this bench inverts the result: the shuffle
    dominates and workers *slow the job down* — the 'no guarantee of
    efficiency' caveat.)"""
    counts = {}
    for i in range(len(value) - 3):
        w = value[i : i + 4]
        counts[w] = counts.get(w, 0) + 1
    for w, c in counts.items():
        yield w, c


def sum_reducer(key, values):
    yield key, sum(values)


TASK = MapReduceTask("kmer-count", heavy_mapper, sum_reducer, combiner=sum_reducer)


def _inputs(n_reads: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    return [
        (i, "".join("ACGT"[c] for c in rng.integers(0, 4, 2000)))
        for i in range(n_reads)
    ]


def test_mapreduce_worker_scaling(benchmark):
    import time

    data = _inputs(1200)

    def run_all():
        rows = []
        baseline = None
        reference = None
        for workers in (1, 2, 4):
            t0 = time.perf_counter()
            out = dict(
                run_task(TASK, data, n_workers=workers, chunk_size=100)
            )
            secs = time.perf_counter() - t0
            if reference is None:
                reference = out
                baseline = secs
            else:
                assert out == reference  # determinism across pool sizes
            rows.append(
                {
                    "workers": workers,
                    "seconds": round(secs, 3),
                    "speedup": round(baseline / secs, 2),
                }
            )
        return rows

    import os

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    n_cpus = os.cpu_count() or 1
    print_rows(
        f"Extension: MapReduce worker scaling (1200 reads, {n_cpus} CPUs)",
        rows,
    )
    by = {r["workers"]: r for r in rows}
    if n_cpus >= 4:
        # Parallel execution helps a compute-bound job (slack: the
        # shuffle and pool startup are serial).
        assert by[4]["seconds"] < by[1]["seconds"] * 1.1
        assert by[4]["speedup"] > 1.0
    else:
        # Single-core host: workers cannot speed anything up; the
        # engine must stay deterministic (checked in run_all) and its
        # pool overhead bounded.
        assert by[4]["seconds"] < 3.0 * by[1]["seconds"]
