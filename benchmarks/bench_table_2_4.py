"""Table 2.4 — ambiguous-base correction quality per default base.

Paper shape: N-resolution accuracy is ~99.98-100% whichever default
base (A/C/G/T) seeds the converted positions, with Gain and EBA close
to the N-free runs; the choice of default barely moves the numbers.
"""

from conftest import print_rows

from repro.experiments.chapter2 import run_table_2_4

MAX_READS = 2500


def test_table_2_4(benchmark, ch2_all):
    datasets = {"D2": ch2_all["D2"], "D6": ch2_all["D6"]}
    rows = benchmark.pedantic(
        run_table_2_4,
        args=(datasets,),
        kwargs={"default_bases": "ACGT", "max_reads": MAX_READS},
        rounds=1,
        iterations=1,
    )
    print_rows("Table 2.4 (reproduction): ambiguous-base correction", rows)
    for r in rows:
        # High N-resolution accuracy for every default base.
        assert r["accuracy"] > 0.85, r
        assert r["gain"] > 0.3, r
    # The default base choice barely matters (paper: <0.2% spread).
    for name in ("D2", "D6"):
        accs = [r["accuracy"] for r in rows if r["data"] == name]
        assert max(accs) - min(accs) < 0.1
