"""Ablation — quality-weighted q-mer counts in REDEEM (Chapter 5).

Replacing raw multiplicities Y with quality-weighted counts (each
instance contributes the product of its bases' correctness
probabilities) pre-deflates error k-mers before the EM even runs.
This measures the detection improvement it buys.
"""

import numpy as np
from conftest import print_rows

from repro.core.redeem import RedeemCorrector, kmer_error_model_from_read_model
from repro.eval import detection_curve, genomic_truth
from repro.kmer import spectrum_from_sequence

K = 10


def test_ablation_quality_weighted_counts(benchmark, ch3_core):
    ds = ch3_core["D2"]
    km = kmer_error_model_from_read_model(ds.read_model, K)
    gspec = spectrum_from_sequence(ds.sim.genome.codes, K, both_strands=True)
    thrs = np.linspace(0.0, 80.0, 161)

    def run_both():
        rows = []
        for weighted in (False, True):
            corr = RedeemCorrector.fit(
                ds.sim.reads, k=K, error_model=km,
                use_quality_weights=weighted,
            )
            truth = genomic_truth(corr.spectrum.kmers, gspec)
            wp = detection_curve(corr.T, truth, thrs).min_wrong_predictions()
            rows.append(
                {
                    "counts": "quality-weighted" if weighted else "raw Y",
                    "min_FP+FN": wp,
                    "total_mass": round(float(corr.T.sum()), 0),
                }
            )
        return rows

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print_rows("Ablation: quality-weighted q-mer counts (D2)", rows)
    raw, weighted = rows
    # Quality weighting strips mass (errors carry low-quality bases)
    # and should not hurt detection.
    assert weighted["total_mass"] < raw["total_mass"]
    assert weighted["min_FP+FN"] <= 1.5 * raw["min_FP+FN"]
