"""Extension — out-of-core streaming: balanced merges vs the quadratic
accumulator, and disk-spill external counting.

The paper's divide-and-merge strategy (Sec. 2.3) is only an
out-of-core answer if merge work stays near-linear.  This bench checks
three claims:

- **equivalence** — balanced-merge and external (disk-spill) spectra
  are bitwise identical to the monolithic spectrum at every chunk
  count (always asserted);
- **speedup** — the balanced merge (binary-counter stack, O(N log C))
  beats the old linear accumulator (re-merging the full table against
  every chunk, O(N·C)) once chunk counts grow (asserted at >= 16
  chunks unless ``--smoke``);
- **bounded memory** — the external counter's in-memory buffer stays
  under the configured budget as chunk count grows (always asserted),
  with spill traffic reported via telemetry gauges.

Runs under pytest (``python -m pytest benchmarks/bench_streaming.py``)
or standalone::

    PYTHONPATH=src python benchmarks/bench_streaming.py [--smoke]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro import telemetry
from repro.kmer import (
    SpectrumAccumulator,
    iter_read_chunks,
    merge_spectra,
    spectrum_from_reads,
)
from repro.simulate.errors import illumina_like_model
from repro.simulate.genome import repeat_spec, simulate_genome
from repro.simulate.illumina import simulate_reads

#: Memory budget for the external-counter rows (small on purpose, so
#: even bench-scale data spills).
EXTERNAL_BUDGET = 256 << 10


def build_dataset(genome_length: int, coverage: float, seed: int = 7):
    rng = np.random.default_rng(seed)
    genome = simulate_genome(repeat_spec(genome_length, 0.0), rng)
    model = illumina_like_model(36, base_rate=0.008, end_multiplier=4.0)
    return simulate_reads(genome, 36, model, rng, coverage=coverage).reads


def linear_spectrum_from_chunks(chunks, k):
    """The pre-balanced-merge accumulator: every chunk is merged into
    one ever-growing table, so chunk i pays for all i-1 predecessors —
    O(N·C) total merge work.  Kept here as the benchmark baseline."""
    from repro.kmer.spectrum import KmerSpectrum, read_kmer_codes

    acc = None
    for chunk in chunks:
        codes = read_kmer_codes(chunk, k, both_strands=True)
        kmers, counts = np.unique(codes, return_counts=True)
        part = KmerSpectrum(k=k, kmers=kmers, counts=counts.astype(np.int64))
        acc = part if acc is None else merge_spectra(acc, part)
    return acc


def _identical(a, b) -> bool:
    return bool(
        np.array_equal(a.kmers, b.kmers) and np.array_equal(a.counts, b.counts)
    )


def run_merge_scaling(reads, k: int, chunk_counts: tuple[int, ...]):
    """Time linear vs balanced vs external counting at each chunk count."""
    mono = spectrum_from_reads(reads, k)
    rows = []
    for n_chunks in chunk_counts:
        chunk_size = max(1, -(-reads.n_reads // n_chunks))
        chunks = list(iter_read_chunks(reads, chunk_size))

        t0 = time.perf_counter()
        linear = linear_spectrum_from_chunks(iter(chunks), k)
        t_linear = time.perf_counter() - t0

        t0 = time.perf_counter()
        acc = SpectrumAccumulator(k)
        for c in chunks:
            acc.add_chunk(c)
        balanced = acc.finalize()
        t_balanced = time.perf_counter() - t0

        t0 = time.perf_counter()
        ext_acc = SpectrumAccumulator(k, max_memory_bytes=EXTERNAL_BUDGET)
        for c in chunks:
            ext_acc.add_chunk(c)
        external = ext_acc.finalize()
        t_external = time.perf_counter() - t0

        assert _identical(balanced, mono), f"balanced diverged at {n_chunks}"
        assert _identical(external, mono), f"external diverged at {n_chunks}"

        # A streaming accumulator asked for a Bloom prefilter must
        # produce the same counts AND answer membership identically to
        # the unfiltered spectrum (the prefilter is a pure fast path).
        pre_acc = SpectrumAccumulator(k, prefilter_fp_rate=0.01)
        for c in chunks:
            pre_acc.add_chunk(c)
        with_prefilter = pre_acc.finalize()
        assert _identical(with_prefilter, mono), (
            f"prefiltered spectrum diverged at {n_chunks}"
        )
        assert with_prefilter.prefilter is not None
        probe = np.concatenate(
            [mono.kmers[:64], (mono.kmers[:64] ^ np.uint64(3))]
        )
        assert np.array_equal(
            with_prefilter.index_of(probe), mono.index_of(probe)
        ), f"prefiltered index_of diverged at {n_chunks}"
        # The spill buffer holds at most budget + one chunk's table
        # (it spills as soon as an add pushes it past the budget), so
        # peak memory is flat in the chunk count.
        mem_bound = EXTERNAL_BUDGET + ext_acc.max_add_bytes
        assert ext_acc.peak_bytes <= mem_bound, (
            f"external buffer {ext_acc.peak_bytes} exceeded "
            f"budget+chunk bound {mem_bound} at {n_chunks} chunks"
        )
        telemetry.gauge(f"spill_bytes_{n_chunks}", ext_acc.spill_bytes)
        telemetry.gauge(f"balanced_peak_bytes_{n_chunks}", acc.peak_bytes)
        rows.append(
            {
                "chunks": len(chunks),
                "linear_s": round(t_linear, 4),
                "balanced_s": round(t_balanced, 4),
                "speedup": round(t_linear / max(t_balanced, 1e-9), 2),
                "external_s": round(t_external, 4),
                "ext_peak_mem": ext_acc.peak_bytes,
                "ext_spill": ext_acc.spill_bytes,
                "identical": True,
            }
        )
    return rows


def _print_rows(title: str, rows: list[dict]) -> None:
    print(f"\n=== {title} ===")
    cols = list(rows[0])
    widths = {c: max(len(c), *(len(str(r[c])) for r in rows)) for c in cols}
    print("  ".join(c.ljust(widths[c]) for c in cols))
    for r in rows:
        print("  ".join(str(r[c]).ljust(widths[c]) for c in cols))


def _check_speedup(rows: list[dict], require: bool) -> None:
    judged = [r for r in rows if r["chunks"] >= 16]
    if not judged:
        return
    if require:
        for r in judged:
            assert r["balanced_s"] < r["linear_s"], (
                f"balanced merge not faster at {r['chunks']} chunks: "
                f"{r['balanced_s']}s vs {r['linear_s']}s linear"
            )
    # Flat memory: the buffer peak must not scale with chunk count.
    # Either more chunks shrank the peak (large per-chunk tables
    # dominated, as at real scale), or the peak sits within budget
    # plus one buffered add (the append-then-spill bound).
    if len(rows) > 1:
        last = rows[-1]["ext_peak_mem"]
        assert (
            last <= rows[0]["ext_peak_mem"] or last <= 2 * EXTERNAL_BUDGET
        ), "external counter memory grew with chunk count"


def test_streaming_merge_scaling():
    reads = build_dataset(genome_length=30_000, coverage=25.0)
    rows = run_merge_scaling(reads, k=12, chunk_counts=(4, 16, 64))
    _print_rows(f"Streaming spectrum construction, {reads.n_reads} reads", rows)
    _check_speedup(rows, require=True)


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument(
        "--smoke", action="store_true",
        help="tiny dataset, equivalence-only — the CI bit-rot guard",
    )
    p.add_argument("--genome-length", type=int, default=60_000)
    p.add_argument("--coverage", type=float, default=30.0)
    p.add_argument("--k", type=int, default=12)
    p.add_argument(
        "--chunks", type=int, nargs="+", default=[4, 16, 64, 256],
        help="chunk counts to measure",
    )
    p.add_argument(
        "--report", default=None, metavar="PATH",
        help="write a repro-run-report/1 JSON report (rows in `extra`)",
    )
    args = p.parse_args(argv)
    if args.smoke:
        args.genome_length = 4_000
        args.coverage = 10.0
        args.chunks = [4, 16]
    with telemetry.session("bench-streaming") as tel:
        with telemetry.span("build_dataset"):
            reads = build_dataset(args.genome_length, args.coverage)
        with telemetry.span("merge_scaling"):
            rows = run_merge_scaling(reads, args.k, tuple(args.chunks))
    _print_rows(
        f"Streaming spectrum construction, {reads.n_reads} reads "
        f"(k={args.k})",
        rows,
    )
    # Timing is asserted only at real scale: a smoke dataset is noise.
    _check_speedup(rows, require=not args.smoke)
    print("equivalence: all streamed spectra bitwise identical to monolithic")
    if args.report:
        path = tel.report(
            argv=list(argv) if argv is not None else None,
            extra={"merge_rows": rows},
        ).write(args.report)
        print(f"wrote run report to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
