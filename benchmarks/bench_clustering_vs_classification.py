"""Extension — de-novo clustering vs database classification.

Sec. 1.3's framing: classification (NAST/MEGAN style) handles only
documented organisms; as samples shift to mostly-unknown species,
clustering becomes the important task.  We quantify it: with a
database holding only half the species, classification leaves novel
reads behind while CLOSET clusters them regardless; Cd-hit-style
greedy clustering does O(n·reps) comparisons where CLOSET's sketch
filter inspects far fewer pairs.
"""

import numpy as np
from conftest import print_rows

from repro.baselines import (
    ReferenceDatabase,
    classification_report,
    classify_reads,
    greedy_length_clustering,
)
from repro.core.closet import ClosetClusterer, ClosetParams, SketchParams
from repro.eval import cluster_purity


def test_clustering_vs_classification(benchmark, ch4_samples_fixture):
    sample = ch4_samples_fixture["small"]
    tax = sample.taxonomy
    k = 15

    def run():
        rows = []
        # Half-complete database: the realistic scenario.
        keep = np.arange(tax.n_species) < tax.n_species // 2
        db = ReferenceDatabase.from_sequences(
            [g for g, kp in zip(tax.genes, keep) if kp],
            tax.units_at_rank("species")[keep],
            k=k,
        )
        predicted = classify_reads(sample.reads, db, min_similarity=0.5)
        truth = sample.true_labels("species")
        known = keep[sample.species_of_read]
        rep_all = classification_report(predicted, truth)
        rep_novel = classification_report(predicted[~known], truth[~known])
        rows.append(
            {
                "method": "classification (half DB)",
                "handled_fraction": round(rep_all["classified_fraction"], 3),
                "novel_handled": round(rep_novel["classified_fraction"], 3),
                "quality": round(rep_all["accuracy_on_classified"], 3),
            }
        )

        # De-novo clustering sees every read, known or not.
        params = ClosetParams(
            sketch=SketchParams(k=k, modulus=24, rounds=3, cmax=200, cmin=0.5)
        )
        res = ClosetClusterer(params).run(sample.reads, thresholds=[0.6])
        clusters = res.clusters[0.6]
        clustered = np.zeros(sample.n_reads, dtype=bool)
        for c in clusters:
            clustered[c] = True
        rows.append(
            {
                "method": "CLOSET clustering",
                "handled_fraction": round(float(clustered.mean()), 3),
                "novel_handled": round(float(clustered[~known].mean()), 3),
                "quality": round(cluster_purity(clusters, truth), 3),
            }
        )

        greedy = greedy_length_clustering(sample.reads, k=k, threshold=0.6)
        big = [c for c in greedy.clusters if len(c) >= 2]
        in_big = np.zeros(sample.n_reads, dtype=bool)
        for c in big:
            in_big[c] = True
        rows.append(
            {
                "method": "greedy (Cd-hit-like)",
                "handled_fraction": round(float(in_big.mean()), 3),
                "novel_handled": round(float(in_big[~known].mean()), 3),
                "quality": round(cluster_purity(big, truth), 3),
            }
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_rows("Extension: clustering vs classification (half DB)", rows)
    by = {r["method"]: r for r in rows}
    cls = by["classification (half DB)"]
    clo = by["CLOSET clustering"]
    # Classification abandons most novel-species reads; clustering
    # handles them at the same rate as documented ones.
    assert cls["novel_handled"] < 0.5
    assert clo["novel_handled"] > cls["novel_handled"]
    # Clusters are taxonomically clean.
    assert clo["quality"] > 0.85
