"""Extension — assembly-based validation of error correction.

The thesis lists 'improvement of assembly post-correction' as the
field's de-facto validation (Sec. 1.2, issue 3) and proposes studying
the link between correction quality and assembly outcomes (Chapter 5).
With the de Bruijn substrate both sides are measurable: correction
should shrink the k-mer graph, raise N50, and cut spurious contig
k-mers.
"""

from conftest import print_rows

from repro.assembly import (
    assembly_stats,
    build_debruijn_graph,
    extract_unitigs,
    genome_recovery,
)
from repro.core.reptile import ReptileCorrector

K_ASM = 15


def test_assembly_validation(benchmark, ch2_all):
    ds = ch2_all["D1"]
    mask = ds.evaluable_mask()
    reads = ds.sim.reads.subset(mask)
    genome = ds.sim.genome

    def run():
        rows = []
        corr = ReptileCorrector.fit(
            reads, genome_length_estimate=genome.length, k=9
        )
        corrected = corr.correct(reads)
        for label, rs in (("raw", reads), ("corrected", corrected)):
            g = build_debruijn_graph(rs, K_ASM)
            unitigs = extract_unitigs(g, min_length=2 * K_ASM)
            stats = assembly_stats(unitigs)
            rec = genome_recovery(unitigs, genome.codes, K_ASM)
            rows.append(
                {
                    "reads": label,
                    "graph_edges": g.n_edges,
                    **stats,
                    "genome_covered": round(rec["covered"], 3),
                    "spurious_kmers": round(rec["spurious"], 4),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_rows("Extension: assembly before/after correction (D1)", rows)
    raw, corrected = rows
    # Correction deflates the error-k-mer blowup...
    assert corrected["graph_edges"] < raw["graph_edges"]
    # ...lengthens contigs...
    assert corrected["n50"] >= raw["n50"]
    # ...and removes spurious sequence without losing the genome.
    assert corrected["spurious_kmers"] <= raw["spurious_kmers"]
    assert corrected["genome_covered"] >= raw["genome_covered"] - 0.02
