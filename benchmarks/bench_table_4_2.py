"""Table 4.2 — data quantities per CLOSET stage at t1 ∈ {95, 92, 90}%.

Paper shape: sketching proposes only a tiny fraction of all O(n²)
pairs (2.4e-5 to 2e-3); predicted : unique : confirmed shrink roughly
1.5-2x per stage; lowering the similarity threshold increases both the
clusters processed and the resulting clusters.
"""

from conftest import print_rows

from repro.experiments.chapter4 import run_table_4_2

THRESHOLDS = (0.95, 0.92, 0.90)


def test_table_4_2(benchmark, ch4_samples_fixture):
    rows, _results = benchmark.pedantic(
        run_table_4_2,
        args=(ch4_samples_fixture,),
        kwargs={"thresholds": THRESHOLDS},
        rounds=1,
        iterations=1,
    )
    print_rows("Table 4.2 (reproduction): stage quantities", rows)
    for r in rows:
        # The sketch filter keeps the workload below all-pairs; the
        # margin grows with input size (the paper's 2.4e-5..2e-3 came
        # from 0.3-5.6M reads; at bench scale the fractions are larger
        # but the trend is identical).
        assert float(r["pair_fraction"]) < 0.3
        assert r["confirmed_edges"] <= r["unique_edges"] <= r["predicted_edges"]
        # Lower thresholds admit more clusters (paper's trend).
        assert r["clusters@0.9"] >= r["clusters@0.95"]
        assert r["processed@0.9"] >= r["processed@0.95"]
    # More input reads -> more edges and clusters.
    by = {r["data"]: r for r in rows}
    assert by["large"]["confirmed_edges"] > by["small"]["confirmed_edges"]
    assert by["large"]["clusters@0.9"] > by["small"]["clusters@0.9"]
    # Relative sketch workload shrinks as the input grows.
    assert (
        float(by["large"]["pair_fraction"])
        < float(by["small"]["pair_fraction"])
    )
