"""Table 3.4 — SHREC vs Reptile vs REDEEM across repeat content.

Paper shape: at 20% repeats the conventional correctors win (SHREC
80.3%, Reptile 78.9% vs REDEEM 51.5% Gain); as repeats grow their
Gains collapse (SHREC 26.7%, Reptile 46.8% at 80%) while REDEEM's
climbs (79.4%) — the crossover is the chapter's headline.
"""

from conftest import print_rows

from repro.experiments.chapter3 import run_table_3_4

MAX_READS = 2500


def test_table_3_4(benchmark, ch3_core):
    rows = benchmark.pedantic(
        run_table_3_4,
        args=(ch3_core,),
        kwargs={"k": 10, "max_reads": MAX_READS},
        rounds=1,
        iterations=1,
    )
    print_rows("Table 3.4 (reproduction): correction vs repeat content", rows)
    gain = {
        (r["data"], r["method"]): r["gain"] for r in rows
    }
    # Low repeats: conventional correctors beat REDEEM.
    assert gain[("D1", "Reptile")] > gain[("D1", "REDEEM")]
    # REDEEM's gain grows with repeat content...
    assert gain[("D3", "REDEEM")] > gain[("D2", "REDEEM")] > gain[("D1", "REDEEM")]
    # ...and overtakes both conventional methods at 80% repeats.
    assert gain[("D3", "REDEEM")] > gain[("D3", "SHREC")]
    assert gain[("D3", "REDEEM")] > gain[("D3", "Reptile")] - 0.05
    # SHREC degrades with repeats (paper: 80.3% -> 26.7%).
    assert gain[("D3", "SHREC")] < gain[("D1", "SHREC")]
