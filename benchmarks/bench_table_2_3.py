"""Table 2.3 — Reptile vs SHREC on the Illumina datasets.

Paper shape: Reptile beats SHREC on Gain (e.g. D2: 65.2-70.9% vs
61.0%) and dramatically on EBA (0.009-0.042% vs 1.5-1.8%), while using
far less memory; Reptile d=2 trades extra time for higher sensitivity
than d=1.
"""

from conftest import print_rows

from repro.experiments.chapter2 import run_table_2_3

MAX_READS = 4000


def test_table_2_3(benchmark, ch2_small):
    rows = benchmark.pedantic(
        run_table_2_3,
        args=(ch2_small,),
        kwargs={"reptile_d": (1, 2), "max_reads": MAX_READS},
        rounds=1,
        iterations=1,
    )
    print_rows("Table 2.3 (reproduction): Reptile vs SHREC", rows)
    for name in ch2_small:
        sub = {r["method"]: r for r in rows if r["data"] == name}
        shrec = sub["SHREC"]
        rep1 = sub["Reptile(d=1)"]
        rep2 = sub["Reptile(d=2)"]
        # Reptile outperforms SHREC in Gain and EBA (the headline;
        # on simulated data our SHREC lacks the real-data weaknesses
        # that depressed it in the paper, so the d=2 configuration is
        # the one that clears it).
        assert max(rep1["gain"], rep2["gain"]) > shrec["gain"], name
        assert min(rep1["EBA"], rep2["EBA"]) <= shrec["EBA"] + 1e-9, name
        # d=2 widens the search: at least as many errors found.
        assert rep2["TP"] >= rep1["TP"] - 5, name
