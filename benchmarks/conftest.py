"""Shared fixtures for the reproduction benchmarks.

Datasets are built once per session at 'bench scale' — large enough
for the paper's qualitative shapes to appear, small enough that the
whole suite finishes in minutes (see DESIGN.md on scaling).  Every
bench prints the reproduced table so the tee'd output doubles as the
data behind EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.eval import format_table
from repro.experiments import (
    chapter2_datasets,
    chapter3_datasets,
    chapter4_samples,
)

#: Genome scale for Chapter 2 datasets (paper: 3.6-4.6 Mbp).
CH2_SCALE = 6_000
#: Coverage multiplier for Chapter 2 (1.0 = the paper's coverages).
CH2_COV = 1.0
#: Genome scale for Chapter 3 datasets (paper: 0.4-4.6 Mbp).
CH3_SCALE = 40_000
#: Base read count for Chapter 4 samples (paper: 312k-5.6M).
CH4_BASE_READS = 500


@pytest.fixture(scope="session")
def ch2_all():
    return chapter2_datasets(scale=CH2_SCALE, coverage_scale=CH2_COV)


@pytest.fixture(scope="session")
def ch2_small():
    """D2 and D4 only — the cheaper correction comparisons."""
    return chapter2_datasets(
        names=["D2", "D4"], scale=CH2_SCALE, coverage_scale=CH2_COV
    )


@pytest.fixture(scope="session")
def ch3_core():
    """D1-D3: the 20/50/80%-repeat trio driving Tables 3.3/3.4."""
    return chapter3_datasets(names=["D1", "D2", "D3"], scale=CH3_SCALE)


@pytest.fixture(scope="session")
def ch3_lowrep():
    """D6: the low-repeat, deep-coverage E. coli-like dataset."""
    return chapter3_datasets(names=["D6"], scale=CH3_SCALE)


@pytest.fixture(scope="session")
def ch4_samples_fixture():
    return chapter4_samples(base_reads=CH4_BASE_READS)


def print_rows(title: str, rows: list[dict]) -> None:
    print(f"\n=== {title} ===")
    print(format_table(rows))
