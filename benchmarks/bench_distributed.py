"""Extension — the pluggable distributed backend vs the local engine.

Two claims, one artifact:

- **equivalence** — routing the chunk loop through each backend
  (in-process threads, the legacy fork pool, socket-connected worker
  processes holding only spectrum *shards*) is bitwise identical to
  serial whole-set correction (always asserted, at any scale);
- **sharded-lookup throughput** — the figure that decides whether a
  sharded spectrum is usable at all: k-mer count lookups per second
  through a :class:`~repro.distributed.ShardRouter`, measured with all
  shards local, and with half the shards answered over real loopback
  RPC (Bloom-prefiltered, as correction runs it).

Runs under pytest (``python -m pytest benchmarks/bench_distributed.py``)
or standalone::

    PYTHONPATH=src python benchmarks/bench_distributed.py [--smoke]
        [--report BENCH_distributed.json]

``--smoke`` is the CI bit-rot guard: a tiny corpus, every backend
exercised end to end, equivalence asserted, no throughput floor.  The
committed ``BENCH_distributed.json`` is the full-scale
``repro-bench-report/1`` perf-trajectory artifact.
"""

from __future__ import annotations

import argparse
import json
import threading
import time

import numpy as np

from repro import telemetry
from repro.core.reptile import ReptileCorrector
from repro.distributed import ShardClientPool, ShardPlan, ShardRouter, split_spectrum
from repro.distributed.socket_backend import SocketBackend
from repro.distributed.worker import ShardServer
from repro.parallel import correct_in_parallel
from repro.simulate.errors import illumina_like_model
from repro.simulate.genome import repeat_spec, simulate_genome
from repro.simulate.illumina import simulate_reads
from repro.telemetry.report import (
    BENCH_SCHEMA_VERSION,
    environment_info,
    validate_bench_report_dict,
)


def build_dataset(
    genome_length: int, coverage: float, read_length: int = 36,
    error_rate: float = 0.008, seed: int = 7,
):
    rng = np.random.default_rng(seed)
    genome = simulate_genome(repeat_spec(genome_length, 0.0), rng)
    model = illumina_like_model(
        read_length, base_rate=error_rate, end_multiplier=4.0
    )
    return simulate_reads(
        genome, read_length, model, rng, coverage=coverage
    ).reads


def run_backends(
    reads, workers: int, shards: int, chunk_size: int
) -> list[dict]:
    """Serial baseline, then each backend; assert equivalence."""
    with telemetry.span("fit"):
        corrector = ReptileCorrector.fit(reads)
    with telemetry.span("serial_baseline"):
        t0 = time.perf_counter()
        baseline = corrector.correct(reads)
        serial_seconds = time.perf_counter() - t0
    rows = [
        {
            "name": "serial",
            "workers": 1,
            "shards": 0,
            "wall_seconds": round(serial_seconds, 4),
            "reads_per_second": round(
                reads.n_reads / max(serial_seconds, 1e-9), 1
            ),
            "speedup_vs_baseline": 1.0,
            "equivalent_to_baseline": True,
        }
    ]

    def timed(name, shard_count, backend):
        with telemetry.span(f"backend_{name}"):
            t0 = time.perf_counter()
            report = correct_in_parallel(
                corrector, reads, workers=workers,
                chunk_size=chunk_size, backend=backend,
            )
            seconds = time.perf_counter() - t0
        identical = bool(
            np.array_equal(report.reads.codes, baseline.codes)
        )
        assert identical, f"{name} output diverged from serial"
        rows.append(
            {
                "name": name,
                "workers": workers,
                "shards": shard_count,
                "wall_seconds": round(seconds, 4),
                "reads_per_second": round(
                    reads.n_reads / max(seconds, 1e-9), 1
                ),
                "speedup_vs_baseline": round(
                    serial_seconds / max(seconds, 1e-9), 2
                ),
                "equivalent_to_baseline": identical,
            }
        )

    timed("threads", 0, "threads")
    timed("fork", 0, "fork")
    fleet = SocketBackend(workers=workers, shards=shards)
    try:
        timed(f"socket_{shards}shards", shards, fleet)
        # A second pass on the warm fleet (state already shipped) —
        # the steady-state number a long job actually sees.
        timed(f"socket_{shards}shards_warm", shards, fleet)
    finally:
        fleet.shutdown()
    return rows, corrector


def run_lookup_throughput(
    corrector, n_shards: int, batch: int = 4096, rounds: int = 50
) -> dict:
    """Lookups/second through a ShardRouter, local vs over loopback.

    The query mix mirrors correction's: mostly absent d-mutant
    candidates (the Bloom prefilter answers those) plus a slice of
    genuinely present k-mers that must reach a shard table.
    """
    spectrum = corrector.spectrum.with_prefilter()
    plan = ShardPlan.for_spectrum(spectrum.k, n_shards)
    shards = split_spectrum(spectrum, plan)
    rng = np.random.default_rng(13)
    present = rng.choice(spectrum.kmers, size=batch // 2)
    absent = rng.integers(
        0, 1 << min(2 * spectrum.k, 62), size=batch // 2, dtype=np.uint64
    )
    codes = np.concatenate([present, absent])
    rng.shuffle(codes)

    def timed_router(router):
        expect = spectrum.count(codes)
        t0 = time.perf_counter()
        for _ in range(rounds):
            got = router.count(codes)
        seconds = time.perf_counter() - t0
        assert np.array_equal(got, expect), "sharded lookups diverged"
        return round(rounds * codes.size / max(seconds, 1e-9), 1)

    local_router = ShardRouter(
        k=spectrum.k, plan=plan,
        local={s.shard_id: s for s in shards},
        prefilter=spectrum.prefilter, n_kmers=spectrum.kmers.size,
    )
    local_rate = timed_router(local_router)

    # Half the shards move behind a real loopback shard server.
    server = ShardServer()
    remote_ids = [s.shard_id for s in shards[: max(1, n_shards // 2)]]
    server.shards = {
        s.shard_id: s for s in shards if s.shard_id in remote_ids
    }
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    clients = ShardClientPool(
        {sid: server.address for sid in remote_ids}
    )
    try:
        remote_router = ShardRouter(
            k=spectrum.k, plan=plan,
            local={
                s.shard_id: s
                for s in shards
                if s.shard_id not in remote_ids
            },
            clients=clients,
            prefilter=spectrum.prefilter, n_kmers=spectrum.kmers.size,
        )
        mixed_rate = timed_router(remote_router)
        counters = dict(remote_router.counters)
    finally:
        clients.close()
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
    return {
        "n_shards": n_shards,
        "remote_shards": len(remote_ids),
        "batch_codes": int(codes.size),
        "local_lookups_per_second": local_rate,
        "mixed_remote_lookups_per_second": mixed_rate,
        "prefiltered_fraction": round(
            counters.get("shard.lookup_prefiltered", 0)
            / max(counters.get("shard.lookup_total", 1), 1),
            3,
        ),
        "rpc_calls": counters.get("shard.rpc_calls", 0),
    }


def bench_report(rows: list[dict], lookup: dict, corpus: dict) -> dict:
    """Assemble (and self-validate) a ``repro-bench-report/1`` doc."""
    report = {
        "schema": BENCH_SCHEMA_VERSION,
        "benchmark": "bench_distributed/backends",
        "corpus": corpus,
        "environment": environment_info(),
        "baseline": "serial",
        "configs": rows,
        "shard_lookup": lookup,
    }
    problems = validate_bench_report_dict(report)
    assert not problems, f"bench report failed self-validation: {problems}"
    return report


def _print_rows(title: str, rows: list[dict]) -> None:
    print(f"\n=== {title} ===")
    cols = list(rows[0])
    widths = {
        c: max(len(c), *(len(str(r[c])) for r in rows)) for c in cols
    }
    print("  ".join(c.ljust(widths[c]) for c in cols))
    for r in rows:
        print("  ".join(str(r[c]).ljust(widths[c]) for c in cols))


def test_distributed_bench_smoke():
    """All backends byte-identical on a tiny corpus; the emitted
    artifact satisfies repro-bench-report/1.  (No throughput floor at
    smoke scale — the committed artifact owns that claim.)"""
    reads = build_dataset(genome_length=1_500, coverage=8.0, seed=11)
    rows, corrector = run_backends(
        reads, workers=2, shards=2, chunk_size=128
    )
    assert all(r["equivalent_to_baseline"] for r in rows)
    lookup = run_lookup_throughput(corrector, n_shards=2, rounds=5)
    assert lookup["mixed_remote_lookups_per_second"] > 0
    report = bench_report(
        rows, lookup,
        {"genome_length": 1_500, "coverage": 8.0, "reads": reads.n_reads},
    )
    assert validate_bench_report_dict(report) == []


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument(
        "--smoke", action="store_true",
        help="tiny corpus, equivalence-only — the CI bit-rot guard",
    )
    p.add_argument("--genome-length", type=int, default=12_000)
    p.add_argument("--coverage", type=float, default=30.0)
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--shards", type=int, default=4)
    p.add_argument("--chunk-size", type=int, default=1024)
    p.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the repro-bench-report/1 artifact to PATH",
    )
    args = p.parse_args(argv)
    if args.smoke:
        args.genome_length, args.coverage = 1_500, 8.0
        args.chunk_size = 128
        args.shards = min(args.shards, 2)
    with telemetry.session("bench-distributed"):
        with telemetry.span("build_dataset"):
            reads = build_dataset(args.genome_length, args.coverage)
        rows, corrector = run_backends(
            reads, args.workers, args.shards, args.chunk_size
        )
        with telemetry.span("shard_lookup_throughput"):
            lookup = run_lookup_throughput(
                corrector, args.shards, rounds=5 if args.smoke else 50
            )
    _print_rows(
        f"Backend equivalence + wall clock, {reads.n_reads} reads", rows
    )
    _print_rows("Sharded k-mer lookup throughput", [lookup])
    print("equivalence: every backend byte-identical to serial correction")
    if args.report:
        report = bench_report(
            rows, lookup,
            {
                "genome_length": args.genome_length,
                "coverage": args.coverage,
                "read_length": 36,
                "error_rate": 0.008,
                "seed": 7,
                "reads": reads.n_reads,
            },
        )
        with open(args.report, "w") as fh:
            json.dump(report, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote bench artifact to {args.report}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
