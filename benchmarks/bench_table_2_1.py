"""Table 2.1 — dataset characteristics of the D1-D6 analogues.

Paper shape: six Illumina datasets, 36/47/101 bp reads, coverage 40x
to 193x, error rates 0.6%-3.3%, with D6 carrying ~14% ambiguous reads.
"""

from conftest import print_rows

from repro.experiments.chapter2 import run_table_2_1


def test_table_2_1(benchmark, ch2_all):
    rows = benchmark.pedantic(
        run_table_2_1, args=(ch2_all,), rounds=1, iterations=1
    )
    print_rows("Table 2.1 (reproduction): dataset characteristics", rows)
    names = [r["name"] for r in rows]
    assert names == ["D1", "D2", "D3", "D4", "D5", "D6"]
    by = {r["name"]: r for r in rows}
    # Coverage ordering follows the paper: D1 > D2, D3 > D4.
    assert by["D1"]["coverage"] > by["D2"]["coverage"]
    assert by["D3"]["coverage"] > by["D4"]["coverage"]
    # Error rates: D5/D6 are the noisier GA-II datasets.
    assert by["D5"]["error_rate"] > by["D1"]["error_rate"]
    # D6 has by far the most ambiguous (discarded-in-paper) reads.
    assert by["D6"]["discarded"] > 5 * by["D2"]["discarded"]
