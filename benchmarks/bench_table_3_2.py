"""Table 3.2 — estimated error probabilities q_i(a, b) at one k-mer
position, for two different datasets.

Paper shape: strongly diagonal matrices (faithful-read probabilities
0.96-0.996), with dataset-specific off-diagonal biases — the two
datasets differ visibly, which is what makes wIED 'wrong'.
"""

import numpy as np
from conftest import print_rows

from repro.experiments.chapter3 import run_table_3_2


def test_table_3_2(benchmark, ch3_core):
    ds = ch3_core["D1"]
    rows = benchmark.pedantic(
        run_table_3_2,
        args=(ds,),
        kwargs={"k": 10},
        rounds=1,
        iterations=1,
    )
    print_rows("Table 3.2 (reproduction): estimated q_i(a, b), D1", rows)
    for r in rows:
        base = r["true_base"]
        # Diagonal dominates (paper: 0.96-0.996).
        assert r[base] > 0.9, r
        off = [v for k2, v in r.items() if k2 not in ("true_base", base)]
        assert all(v < 0.05 for v in off)
    # Rows are (approximately) stochastic.
    for r in rows:
        total = sum(v for k2, v in r.items() if k2 != "true_base")
        assert abs(total - 1.0) < 0.01


def test_table_3_2_datasets_differ(ch3_core):
    """The wrong-lab distribution must actually be wrong: estimates
    from two different simulated platforms diverge (as E. coli vs
    A. sp. ADP1 did in the paper)."""
    from repro.experiments.datasets import wrong_illumina_model
    from repro.core.redeem import kmer_error_model_from_read_model

    k = 10
    ds = ch3_core["D1"]
    tied = kmer_error_model_from_read_model(ds.read_model, k)
    wied = kmer_error_model_from_read_model(
        wrong_illumina_model(ds.read_model.read_length), k
    )
    diff = np.abs(tied.q - wied.q).max()
    assert diff > 0.001
