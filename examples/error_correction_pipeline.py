#!/usr/bin/env python
"""End-to-end error-correction study: Reptile vs SHREC vs the SAP
baseline, evaluated the way the thesis evaluates (Sec. 2.4).

The scenario mirrors Chapter 2's experiments: an Illumina run of a
low-repeat bacterial genome, complete with ambiguous (N) bases and a
tail of unmappable junk reads.  The pipeline:

1. simulate the dataset and write/read it through FASTQ (showing the
   I/O layer);
2. characterize it by mapping with the RMAP-like mapper (Table 2.2
   style: uniquely / ambiguously mapped, unmapped, error rate);
3. run three correctors; score Gain, EBA, sensitivity, specificity
   over the evaluable (mapped, N-free) reads;
4. print a comparison table.

Run:  python examples/error_correction_pipeline.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.baselines import ShrecCorrector, ShrecParams, SpectralCorrector, SpectralParams
from repro.core.reptile import ReptileCorrector
from repro.eval import evaluate_correction, format_table
from repro.io import read_fastq, write_fastq
from repro.mapping import map_reads
from repro.simulate import (
    illumina_like_model,
    inject_ambiguous,
    simulate_genome,
    simulate_reads,
    repeat_spec,
)

GENOME_LENGTH = 10_000
READ_LENGTH = 36
COVERAGE = 70.0


def main() -> None:
    rng = np.random.default_rng(11)

    # --- 1. dataset ------------------------------------------------
    genome = simulate_genome(
        repeat_spec(GENOME_LENGTH, 0.03, unit_length=200), rng
    )
    model = illumina_like_model(READ_LENGTH, base_rate=0.005, end_multiplier=4.0)
    sim = simulate_reads(genome, READ_LENGTH, model, rng, coverage=COVERAGE)
    sim = inject_ambiguous(sim, rng, read_fraction=0.02, per_read_rate=0.02)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "run.fastq"
        write_fastq(sim.reads, path)
        reads = read_fastq(path)
    print(f"dataset: {reads.n_reads} x {READ_LENGTH} bp reads "
          f"({reads.coverage(GENOME_LENGTH):.0f}x), "
          f"{int(reads.has_ambiguous().sum())} reads contain N")

    # --- 2. characterization by mapping ------------------------------
    clean = reads.subset(~reads.has_ambiguous())
    mapping = map_reads(clean, genome.codes, max_mismatches=5)
    print(f"mapping: {100 * mapping.fraction_unique():.1f}% unique, "
          f"{100 * mapping.fraction_ambiguous():.1f}% ambiguous, "
          f"{100 * mapping.fraction_unmapped():.1f}% unmapped")

    # --- 3. correct with three methods --------------------------------
    mask = ~reads.has_ambiguous()
    eval_reads = reads.subset(mask)
    eval_true = sim.true_codes[mask]

    rows = []

    def score(name: str, corrected, seconds: float) -> None:
        m = evaluate_correction(
            eval_reads.codes, corrected.codes, eval_true,
            lengths=eval_reads.lengths,
        )
        rows.append(
            {
                "method": name,
                "gain": round(m.gain, 3),
                "sensitivity": round(m.sensitivity, 3),
                "specificity": round(m.specificity, 5),
                "EBA": round(m.eba, 4),
                "seconds": round(seconds, 1),
            }
        )

    t0 = time.perf_counter()
    reptile = ReptileCorrector.fit(reads, genome_length_estimate=GENOME_LENGTH)
    score("Reptile", reptile.correct(eval_reads), time.perf_counter() - t0)

    t0 = time.perf_counter()
    shrec = ShrecCorrector(
        reads, ShrecParams(levels=(17,), alpha=4.0, genome_length=GENOME_LENGTH)
    )
    score("SHREC", shrec.correct(eval_reads), time.perf_counter() - t0)

    t0 = time.perf_counter()
    sap = SpectralCorrector(reads, SpectralParams(k=12, m=4))
    score("SAP", sap.correct(eval_reads), time.perf_counter() - t0)

    # --- 4. report -------------------------------------------------------
    print()
    print(format_table(rows))
    best = max(rows, key=lambda r: r["gain"])
    print(f"\nbest method by Gain: {best['method']} ({best['gain']})")


if __name__ == "__main__":
    main()
