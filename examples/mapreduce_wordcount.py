#!/usr/bin/env python
"""The MapReduce substrate on its own: counting k-mers across a read
set, serially and with a multiprocess worker pool.

CLOSET's Hadoop jobs run on :mod:`repro.mapreduce`, a small local
MapReduce engine.  This example shows the engine directly — the
'hello world' of MapReduce, but over DNA — so its mapper/combiner/
reducer/pipeline machinery is visible outside the CLOSET driver.

Run:  python examples/mapreduce_wordcount.py
"""

import numpy as np

from repro.mapreduce import Counters, MapReduceTask, Pipeline, run_task
from repro.simulate import UniformErrorModel, random_genome, simulate_reads

K = 8


def kmer_mapper(read_id, sequence):
    """Emit every k-mer of the read with count 1."""
    for i in range(len(sequence) - K + 1):
        yield sequence[i : i + K], 1


def sum_reducer(kmer, counts):
    yield kmer, sum(counts)


def top_mapper(kmer, count):
    """Re-key by count bucket so the reducer can rank."""
    yield "all", (count, kmer)


def top_reducer(_key, items):
    for count, kmer in sorted(items, reverse=True)[:10]:
        yield kmer, count


def main() -> None:
    rng = np.random.default_rng(3)
    genome = random_genome(5_000, rng)
    sim = simulate_reads(
        genome, 50, UniformErrorModel(50, 0.01), rng, coverage=30.0
    )
    inputs = [(i, sim.reads.sequence(i)) for i in range(sim.n_reads)]
    print(f"{len(inputs)} reads, counting {K}-mers")

    count_task = MapReduceTask(
        "kmer-count", kmer_mapper, sum_reducer, combiner=sum_reducer
    )

    # Serial run with counters.
    counters = Counters()
    counts = run_task(count_task, inputs, counters=counters)
    print(f"serial: {len(counts)} distinct {K}-mers; "
          f"map emitted {counters['map_output_records']} pairs, "
          f"combiner shrank them to {counters['combine_output_records']}")

    # Parallel run must agree exactly.
    par = run_task(count_task, inputs, n_workers=4)
    assert dict(par) == dict(counts)
    print("parallel (4 workers): identical output")

    # A two-stage pipeline: count, then rank the most frequent k-mers.
    pipe = Pipeline(
        [count_task, MapReduceTask("top10", top_mapper, top_reducer)]
    )
    top = pipe.run(inputs)
    print("\ntop k-mers (count — these sit in the genome's repeats or "
          "high-coverage spots):")
    for kmer, count in top:
        print(f"  {kmer}  x{count}")
    print("\nstage report:")
    for r in pipe.report_table():
        print(f"  {r['stage']:12s} {r['seconds']*1000:8.1f} ms  "
              f"-> {r['outputs']} records")


if __name__ == "__main__":
    main()
