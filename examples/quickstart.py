#!/usr/bin/env python
"""Quickstart: simulate a sequencing run, correct it with Reptile,
and measure how many errors were removed.

This walks the minimal happy path of the library:

1. simulate a reference genome and an Illumina-like read set;
2. fit the Reptile corrector (Chapter 2 of Yang 2011) on the reads —
   no reference needed, parameters chosen from the data's own
   histograms;
3. correct the reads and score the result against the simulator's
   ground truth (TP/FP/Gain/EBA, the thesis's Sec. 2.4 measures).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core.reptile import ReptileCorrector
from repro.eval import evaluate_correction
from repro.simulate import illumina_like_model, random_genome, simulate_reads


def main() -> None:
    rng = np.random.default_rng(7)

    # 1. A 20 kbp reference and a 60x run of 36 bp reads with a
    #    realistic 3'-weighted error profile (~0.8% average).
    genome = random_genome(20_000, rng)
    model = illumina_like_model(36, base_rate=0.005, end_multiplier=4.0)
    sim = simulate_reads(genome, 36, model, rng, coverage=60.0)
    print(f"simulated {sim.n_reads} reads, " f"{sim.n_errors()} erroneous bases "
          f"({100 * sim.observed_error_rate():.2f}%)")

    # 2. Fit Reptile. Everything is derived from the reads themselves;
    #    the genome length estimate only guides the choice of k.
    corrector = ReptileCorrector.fit(sim.reads, genome_length_estimate=20_000)
    p = corrector.params
    print(f"selected parameters: k={p.k} d={p.d} tile={p.tile_length}bp "
          f"Cg={p.cg} Cm={p.cm} Qc={p.qc}")

    # 3. Correct and score.
    result = corrector.run(sim.reads)
    metrics = evaluate_correction(
        sim.reads.codes, result.reads.codes, sim.true_codes
    )
    print(f"corrected {result.stats.bases_changed} bases "
          f"({result.stats.tiles_corrected} tiles)")
    print(f"sensitivity = {metrics.sensitivity:.3f}")
    print(f"specificity = {metrics.specificity:.5f}")
    print(f"gain        = {metrics.gain:.3f}   "
          "(fraction of errors removed from the data)")
    print(f"EBA         = {metrics.eba:.4f}  "
          "(wrong-target rate among attempted fixes)")

    assert metrics.gain > 0.5, "expected most errors to be removed"


if __name__ == "__main__":
    main()
