#!/usr/bin/env python
"""The fault-tolerant MapReduce layer under a deterministic fault barrage.

CLOSET assumes a Hadoop-style runtime that survives task failures by
re-execution; this example injects every supported fault class into a
k-mer-counting job through a seed-driven :class:`FaultPlan` — transient
mapper crashes, a permanently poisonous record, and a hanging reducer —
then shows the reliable engine completing anyway, with the recovery
visible in the counters.  It finishes with a pipeline crash-and-resume:
stage checkpoints let the rerun skip work that already completed.

Run:  python examples/fault_injection.py
"""

import tempfile

import numpy as np

from repro.mapreduce import (
    Counters,
    FatalTaskError,
    FaultPlan,
    FaultSpec,
    MapReduceTask,
    Pipeline,
    RetryPolicy,
    run_task,
)
from repro.simulate import UniformErrorModel, random_genome, simulate_reads

K = 8
POISON_READ = 13


def kmer_mapper(read_id, sequence):
    for i in range(len(sequence) - K + 1):
        yield sequence[i : i + K], 1


def sum_reducer(kmer, counts):
    yield kmer, sum(counts)


COUNT_TASK = MapReduceTask("kmer-count", kmer_mapper, sum_reducer)


def main() -> None:
    rng = np.random.default_rng(3)
    genome = random_genome(4_000, rng)
    sim = simulate_reads(
        genome, 50, UniformErrorModel(50, 0.01), rng, coverage=20.0
    )
    inputs = [(i, sim.reads.sequence(i)) for i in range(sim.n_reads)]
    print(f"{len(inputs)} reads, counting {K}-mers under injected faults\n")

    plan = FaultPlan(
        seed=11,
        specs=(
            # ~10% of map records raise — but only on their first
            # attempt, so a retry cures them (a transient fault).
            FaultSpec(kind="raise", phase="map", rate=0.10, max_attempt=1),
            # One record raises on *every* attempt: a poison record
            # that only bad-record skip mode can get past.
            FaultSpec(
                kind="raise", phase="map", keys=(POISON_READ,), max_attempt=None
            ),
            # One reducer hangs past the task timeout on its first
            # attempt — a straggler, re-executed in the parent.
            FaultSpec(
                kind="hang",
                phase="reduce",
                rate=0.02,
                max_attempt=1,
                hang_seconds=1.0,
            ),
        ),
    )
    policy = RetryPolicy(
        max_retries=2, backoff_base=0.01, task_timeout=0.3,
        skip_bad_records=True,
    )

    counters = Counters()
    out = run_task(
        plan.wrap(COUNT_TASK),
        inputs,
        n_workers=4,
        chunk_size=32,
        counters=counters,
        policy=policy,
    )
    clean = run_task(
        COUNT_TASK, [kv for kv in inputs if kv[0] != POISON_READ]
    )
    assert dict(out) == dict(clean)
    c = counters.as_dict()
    print(f"job completed: {len(out)} distinct {K}-mers "
          "(identical to a clean run minus the poison read)")
    print(f"  task attempts          {c.get('task_attempts', 0)}")
    print(f"  retries                {c.get('retries', 0)}")
    print(f"  straggler re-executions {c.get('straggler_reexecutions', 0)}")
    print(f"  skipped records        {c.get('skipped_records', 0)} "
          f"(read {POISON_READ}, isolated by bisection)")
    print(f"  map input records      {c.get('map_input_records', 0)} "
          "— exact despite every failed attempt\n")

    # -- stage checkpointing: crash, then resume -------------------------
    def bucket_mapper(kmer, count):
        yield count, 1

    def bucket_reducer(count, ones):
        yield count, sum(ones)

    histogram = MapReduceTask("count-histogram", bucket_mapper, bucket_reducer)
    always_fail = FaultPlan(
        specs=(FaultSpec(kind="raise", phase="map", rate=1.0, max_attempt=None),)
    )
    with tempfile.TemporaryDirectory() as ckpt:
        crashing = Pipeline(
            [COUNT_TASK, always_fail.wrap(histogram)],
            policy=RetryPolicy(max_retries=0, skip_bad_records=False),
            checkpoint_dir=ckpt,
        )
        try:
            crashing.run(inputs)
        except FatalTaskError:
            print("pipeline 'crashed' in stage 2 (as injected); "
                  "stage 1 is checkpointed")
        fixed = Pipeline([COUNT_TASK, histogram], checkpoint_dir=ckpt)
        hist = fixed.run(inputs)
        cached = [r.name for r in fixed.reports if r.from_checkpoint]
        print(f"rerun resumed from checkpoint: skipped {cached}, "
              f"ran only the fixed stage")
        top = sorted(hist, reverse=True)[:3]
        print("k-mer multiplicity histogram (top):",
              ", ".join(f"x{c}: {n}" for c, n in top))


if __name__ == "__main__":
    main()
