#!/usr/bin/env python
"""Repeat-aware error detection with REDEEM (Chapter 3).

The motivating problem: in a repeat-rich genome, an erroneous k-mer
near a high-multiplicity repeat is observed many times — thresholding
raw counts Y misclassifies it, and conventional correctors either miss
it or 'fix' genuine repeat variants.  REDEEM instead estimates, by EM
over the k-mer Hamming graph, how many sequencing attempts *targeted*
each k-mer (T), and thresholds that.

This example:

1. builds a genome where 60% of the sequence is spanned by ~100-copy
   repeats and simulates a deep Illumina run;
2. fits REDEEM with the platform's position-specific error model;
3. compares detection quality: thresholding Y vs thresholding T
   (reproducing Table 3.3's headline at example scale);
4. infers the threshold automatically from the T histogram's mixture
   structure (Sec. 3.7) and corrects the reads.

Run:  python examples/repeat_aware_correction.py
"""

import numpy as np

from repro.core.redeem import RedeemCorrector, kmer_error_model_from_read_model
from repro.eval import detection_curve, evaluate_correction, genomic_truth
from repro.kmer import spectrum_from_sequence
from repro.simulate import (
    illumina_like_model,
    repeat_spec,
    simulate_genome,
    simulate_reads,
)

K = 10


def main() -> None:
    rng = np.random.default_rng(5)

    # --- 1. repeat-rich genome + reads -----------------------------
    spec = repeat_spec(40_000, repeat_fraction=0.6, unit_length=150)
    genome = simulate_genome(spec, rng)
    mult = spec.repeat_families[0].multiplicity
    print(f"genome: {genome.length} bp, "
          f"{100 * spec.repeat_fraction:.0f}% repeats "
          f"(~{mult} copies per family)")
    model = illumina_like_model(36, base_rate=0.008, end_multiplier=3.0)
    sim = simulate_reads(genome, 36, model, rng, coverage=80.0)
    print(f"reads: {sim.n_reads} x 36 bp at 80x, "
          f"{100 * sim.observed_error_rate():.2f}% error")

    # --- 2. fit REDEEM ------------------------------------------------
    kmer_model = kmer_error_model_from_read_model(model, K)
    redeem = RedeemCorrector.fit(sim.reads, k=K, error_model=kmer_model)
    print(f"EM converged in {redeem.model.n_iter} iterations over "
          f"{redeem.spectrum.n_kmers} observed {K}-mers")

    # --- 3. detection: Y vs T ------------------------------------------
    genome_kmers = spectrum_from_sequence(genome.codes, K, both_strands=True)
    truth = genomic_truth(redeem.spectrum.kmers, genome_kmers)
    thresholds = np.linspace(0.0, 80.0, 161)
    wrong_y = detection_curve(
        redeem.Y.astype(float), truth, thresholds
    ).min_wrong_predictions()
    wrong_t = detection_curve(redeem.T, truth, thresholds).min_wrong_predictions()
    print(f"min FP+FN thresholding observed counts Y : {wrong_y}")
    print(f"min FP+FN thresholding REDEEM attempts T : {wrong_t}")
    assert wrong_t < wrong_y

    # --- 4. automatic threshold + correction ----------------------------
    thr, fit = redeem.infer_threshold()
    print(f"mixture-inferred threshold: {thr:.2f} "
          f"(single-copy coverage peak at T≈{fit.coverage_peak:.1f})")
    corrected, stats = redeem.correct_with_stats(sim.reads)
    m = evaluate_correction(sim.reads.codes, corrected.codes, sim.true_codes)
    print(f"corrected {stats['n_bases_changed']} bases in "
          f"{stats['n_flagged_reads']} flagged reads")
    print(f"gain = {m.gain:.3f}, specificity = {m.specificity:.5f}")


if __name__ == "__main__":
    main()
