#!/usr/bin/env python
"""Metagenomic read clustering with CLOSET (Chapter 4).

A 16S rRNA survey of an environmental sample: thousands of 454-style
reads from unknown organisms must be grouped into taxonomic units
without a reference database.  CLOSET avoids the O(n²) all-pairs
comparison via k-mer sketching, validates candidate pairs with an
exact containment similarity, and clusters by incremental γ-quasi-
clique enumeration at a *decreasing sequence* of similarity thresholds
— one clustering per taxonomic rank.

This example:

1. simulates a taxonomy (phylum → family → genus → species) and a
   log-normal-abundance read pool, with every read's true labels kept;
2. runs CLOSET on both backends — the plain vectorized one and the
   MapReduce pipeline (Tasks 1-8 of Sec. 4.4) with multiprocess
   workers;
3. evaluates cluster quality per rank with purity and the Adjusted
   Rand Index, identifying which threshold best separates each rank
   (the Table 4.4 methodology).

Run:  python examples/metagenomics_clustering.py
"""

import numpy as np

from repro.core.closet import ClosetClusterer, ClosetParams, SketchParams
from repro.eval import cluster_purity, clustering_ari, format_table
from repro.simulate import (
    RANKS,
    TaxonomySpec,
    simulate_metagenome,
    simulate_taxonomy,
)

THRESHOLDS = [0.9, 0.7, 0.5, 0.35]


def main() -> None:
    rng = np.random.default_rng(2)

    # --- 1. sample --------------------------------------------------
    tax_spec = TaxonomySpec(
        gene_length=1200,
        branching={"phylum": 3, "family": 2, "genus": 2, "species": 3},
    )
    taxonomy = simulate_taxonomy(tax_spec, rng)
    sample = simulate_metagenome(
        taxonomy, 800, rng, read_length_mean=350.0, error_rate=0.01
    )
    print(f"sample: {sample.n_reads} reads from "
          f"{taxonomy.n_species} species "
          f"({sample.reads.lengths.min()}-{sample.reads.lengths.max()} bp)")

    # --- 2. cluster -------------------------------------------------------
    params = ClosetParams(
        sketch=SketchParams(k=14, modulus=8, rounds=3, cmax=300, cmin=0.3)
    )
    result = ClosetClusterer(params).run(sample.reads, thresholds=THRESHOLDS)
    er = result.edge_result
    total_pairs = sample.n_reads * (sample.n_reads - 1) // 2
    print(f"sketching proposed {er.n_unique} candidate pairs "
          f"({100 * er.n_unique / total_pairs:.2f}% of all {total_pairs}); "
          f"{er.n_confirmed} edges confirmed")

    # The same clustering through the MapReduce pipeline, in parallel.
    mr = ClosetClusterer(params).run(
        sample.reads, thresholds=[0.5], backend="mapreduce", n_workers=2
    )
    agree = set(map(tuple, mr.edge_result.edges.tolist())) == set(
        map(tuple, er.edges.tolist())
    )
    print(f"mapreduce backend: {mr.edge_result.n_confirmed} edges "
          f"({'identical to' if agree else 'differs from'} plain backend); "
          f"stage seconds: { {k: round(v, 2) for k, v in mr.stage_seconds.items()} }")

    # --- 3. evaluate per rank ----------------------------------------------
    rows = []
    for t in THRESHOLDS:
        clusters = result.clusters[t]
        row = {"threshold": t, "clusters": len(clusters)}
        for rank in RANKS:
            labels = sample.true_labels(rank)
            row[f"ARI({rank})"] = round(clustering_ari(clusters, labels), 3)
        row["purity(genus)"] = round(
            cluster_purity(clusters, sample.true_labels("genus")), 3
        )
        rows.append(row)
    print()
    print(format_table(rows))

    for rank in RANKS:
        best = max(rows, key=lambda r: r[f"ARI({rank})"])
        print(f"best threshold for {rank:8s}: {best['threshold']}")


if __name__ == "__main__":
    main()
