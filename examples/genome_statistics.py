#!/usr/bin/env python
"""Estimating genome length and repeat content straight from reads.

A byproduct of REDEEM's attempt estimates T (Sec. 3.6): T is
proportional to each k-mer's genomic occurrence, so fitting the
mixture of Fig. 3.3 recovers the coverage constant — and with it, the
genome's size and how much of it is spanned by repeats — without any
assembly or reference.  This example also exercises the hybrid
REDEEM→Reptile corrector on the same data.

Run:  python examples/genome_statistics.py
"""

import numpy as np

from repro.core import HybridCorrector
from repro.core.redeem import (
    RedeemCorrector,
    estimate_genome_statistics,
    kmer_error_model_from_read_model,
)
from repro.eval import evaluate_correction
from repro.simulate import (
    illumina_like_model,
    repeat_spec,
    simulate_genome,
    simulate_reads,
)

K = 10


def main() -> None:
    rng = np.random.default_rng(21)
    true_length = 35_000
    true_repeat_fraction = 0.45

    genome = simulate_genome(
        repeat_spec(true_length, true_repeat_fraction, unit_length=150), rng
    )
    model = illumina_like_model(36, base_rate=0.007, end_multiplier=3.0)
    sim = simulate_reads(genome, 36, model, rng, coverage=70.0)
    print(f"simulated {sim.n_reads} reads at 70x; "
          f"true genome: {true_length} bp, "
          f"{100 * true_repeat_fraction:.0f}% repeats")

    # --- genome statistics from T ----------------------------------
    km = kmer_error_model_from_read_model(model, K)
    redeem = RedeemCorrector.fit(sim.reads, k=K, error_model=km)
    est = estimate_genome_statistics(redeem.model)
    print("\nestimates from the T mixture (no reference, no assembly):")
    print(f"  genome length   : {est.genome_length:,.0f} bp "
          f"(true {true_length:,})")
    print(f"  repeat fraction : {est.repeat_fraction:.2f} "
          f"(true {true_repeat_fraction:.2f})")
    print(f"  per-copy T      : {est.coverage_constant:.1f}")

    # --- hybrid correction on the same fitted model -------------------
    hybrid = HybridCorrector(
        redeem, reptile_kwargs={"genome_length_estimate": int(est.genome_length), "k": K}
    )
    sub = sim.reads.subset(np.arange(min(5000, sim.n_reads)))
    result = hybrid.run(sub)
    m = evaluate_correction(
        sub.codes, result.reads.codes, sim.true_codes[: sub.n_reads]
    )
    print("\nhybrid REDEEM->Reptile correction:")
    print(f"  stage 1 changed {result.redeem_stats['n_bases_changed']} bases, "
          f"stage 2 changed {result.reptile_bases_changed}")
    print(f"  gain = {m.gain:.3f}, specificity = {m.specificity:.5f}")

    rel_err = abs(est.genome_length - true_length) / true_length
    assert rel_err < 0.25, "genome length estimate off by >25%"


if __name__ == "__main__":
    main()
