#!/usr/bin/env python
"""Distinguishing polymorphisms from sequencing errors.

Chapter 5 lists 'to distinguish errors from polymorphisms, e.g. SNPs'
as the first open challenge, noting Reptile's ambiguous tiles mark the
spots.  This example builds a *diploid* sample — two haplotypes of one
genome differing at a handful of SNP positions — and shows that

1. the k-mer spectrum contains balanced variant pairs exactly at the
   planted SNPs (detected by ``detect_polymorphic_pairs``),
2. an error-corrector that ignored this would erase the minor allele,
   while the detector separates alleles (balanced) from errors
   (lopsided).

Run:  python examples/snp_detection.py
"""

import numpy as np

from repro.core.reptile import detect_polymorphic_pairs, polymorphic_sites
from repro.io import ReadSet
from repro.kmer import spectrum_from_reads
from repro.seq import decode
from repro.simulate import UniformErrorModel, random_genome, simulate_reads

K = 13
N_SNPS = 5


def main() -> None:
    rng = np.random.default_rng(13)

    # --- diploid genome: two haplotypes with N_SNPS differences ----
    genome = random_genome(8000, rng)
    hap_a = genome.codes
    hap_b = hap_a.copy()
    snp_positions = np.sort(rng.choice(len(hap_a), size=N_SNPS, replace=False))
    for p in snp_positions.tolist():
        hap_b[p] = (hap_b[p] + int(rng.integers(1, 4))) % 4
    print(f"planted {N_SNPS} SNPs at {snp_positions.tolist()}")

    # --- sequence both haplotypes (roughly balanced alleles) -----------
    import dataclasses

    reads_parts = []
    for hap in (hap_a, hap_b):
        g = dataclasses.replace(genome, codes=hap)
        sim = simulate_reads(
            g, 36, UniformErrorModel(36, 0.005), rng, coverage=35.0
        )
        reads_parts.append(sim.reads)
    reads = ReadSet(
        codes=np.concatenate([r.codes for r in reads_parts]),
        lengths=np.concatenate([r.lengths for r in reads_parts]),
        quals=np.concatenate([r.quals for r in reads_parts]),
    )
    print(f"{reads.n_reads} reads from the two haplotypes (70x combined)")

    # --- detect balanced variant pairs ----------------------------------
    spectrum = spectrum_from_reads(reads, K, both_strands=False)
    pairs = detect_polymorphic_pairs(spectrum, min_count=8, max_ratio=3.0)
    sites = polymorphic_sites(pairs, spectrum, min_pairs=3)
    print(f"\n{len(pairs)} balanced k-mer variant pairs "
          f"-> {len(sites)} aggregated variant sites:")
    for s in sites:
        print(f"  {s.context_a} / {s.context_b}  "
              f"({s.support_a} vs {s.support_b} reads, "
              f"{s.n_supporting_pairs} witnessing pairs)")

    # --- verify against the planted truth ---------------------------------
    from repro.seq import reverse_complement

    hap_a_str, hap_b_str = decode(hap_a), decode(hap_b)
    covered: set[int] = set()
    for s in sites:
        for ctx in (s.context_a, s.context_b):
            for probe in (ctx, reverse_complement(ctx)):
                for hap in (hap_a_str, hap_b_str):
                    at = hap.find(probe)
                    if at >= 0:
                        covered.update(range(at, at + K))
    found = sum(1 for p in snp_positions.tolist() if p in covered)
    print(f"\nrecovered {found}/{N_SNPS} planted SNPs")
    assert found >= N_SNPS - 1, "missed too many planted SNPs"


if __name__ == "__main__":
    main()
